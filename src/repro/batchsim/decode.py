"""Columnar program decode: opcode tables and batch decode arrays.

The batched engine never dispatches on :class:`~repro.isa.instructions.Opcode`
objects at runtime.  Every opcode is assigned a dense integer index
(its position in the enum declaration order, frozen here as
:data:`OPCODE_ORDER`), and every per-opcode decision the scalar
interpreter makes — operand applicability, result selection, branch
condition, memory width, terminal behaviour — is precomputed into a
46-entry numpy table indexed by that opcode index.  A batch of
programs then decodes to padded ``[lanes, positions]`` int64 columns
(opcode index, rd, rs1, rs2, imm), and every per-step decision becomes
one table gather.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from repro.isa.instructions import (
    MEMORY_ACCESS_WIDTH,
    Opcode,
    OPCODE_INFO,
    SHIFT_IMMEDIATE_OPCODES,
)
from repro.isa.program import Program

#: Frozen lane-engine opcode numbering: enum declaration order.
OPCODE_ORDER: Tuple[Opcode, ...] = tuple(Opcode)
OP_INDEX = {opcode: index for index, opcode in enumerate(OPCODE_ORDER)}
N_OPCODES = len(OPCODE_ORDER)

_LOADS = frozenset({Opcode.LB, Opcode.LH, Opcode.LW, Opcode.LBU, Opcode.LHU})
_STORES = frozenset({Opcode.SB, Opcode.SH, Opcode.SW})
_BRANCHES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU, Opcode.BGEU}
)
_IMMEDIATE_ALU = frozenset(
    {
        Opcode.ADDI,
        Opcode.SLTI,
        Opcode.SLTIU,
        Opcode.XORI,
        Opcode.ORI,
        Opcode.ANDI,
    }
) | SHIFT_IMMEDIATE_OPCODES


def _bool_table(predicate) -> np.ndarray:
    return np.array([bool(predicate(opcode)) for opcode in OPCODE_ORDER])


def _int_table(mapping) -> np.ndarray:
    return np.array([mapping(opcode) for opcode in OPCODE_ORDER], dtype=np.int64)


HAS_RD = _bool_table(lambda opcode: OPCODE_INFO[opcode].has_rd)
HAS_RS1 = _bool_table(lambda opcode: OPCODE_INFO[opcode].has_rs1)
HAS_RS2 = _bool_table(lambda opcode: OPCODE_INFO[opcode].has_rs2)
IS_TERMINAL = _bool_table(lambda opcode: opcode in (Opcode.ECALL, Opcode.EBREAK))
IS_LOAD = _bool_table(lambda opcode: opcode in _LOADS)
IS_STORE = _bool_table(lambda opcode: opcode in _STORES)
IS_MEMORY = IS_LOAD | IS_STORE
IS_BRANCH = _bool_table(lambda opcode: opcode in _BRANCHES)
#: Operand b comes from the immediate (I-format ALU incl. shifts).
USE_IMM = _bool_table(lambda opcode: opcode in _IMMEDIATE_ALU)
IS_SIGNED_DIV = _bool_table(lambda opcode: opcode in (Opcode.DIV, Opcode.REM))
MEM_WIDTH = _int_table(lambda opcode: MEMORY_ACCESS_WIDTH.get(opcode, 0))
IS_SHIFT_IMMEDIATE = _bool_table(lambda opcode: opcode in SHIFT_IMMEDIATE_OPCODES)
IS_SHIFT_REGISTER = _bool_table(
    lambda opcode: opcode in (Opcode.SLL, Opcode.SRL, Opcode.SRA)
)
IS_MULTIPLY = _bool_table(
    lambda opcode: opcode in (Opcode.MUL, Opcode.MULH, Opcode.MULHSU, Opcode.MULHU)
)
IS_DIVIDE_QUOTIENT = _bool_table(lambda opcode: opcode in (Opcode.DIV, Opcode.DIVU))
IS_DIVIDE_REMAINDER = _bool_table(lambda opcode: opcode in (Opcode.REM, Opcode.REMU))
IS_DIVIDE = IS_DIVIDE_QUOTIENT | IS_DIVIDE_REMAINDER
IS_JUMP = _bool_table(lambda opcode: opcode in (Opcode.JAL, Opcode.JALR))

JAL_INDEX = OP_INDEX[Opcode.JAL]
JALR_INDEX = OP_INDEX[Opcode.JALR]

#: Result-primitive identifiers: the batched step computes every
#: primitive for all active lanes, then gathers the per-lane result
#: through ``RESULT_INDEX[opcode]`` (loads are patched per lane).
(
    R_NONE,
    R_ADD,
    R_SUB,
    R_AND,
    R_OR,
    R_XOR,
    R_SLT,
    R_SLTU,
    R_SLL,
    R_SRL,
    R_SRA,
    R_LUI,
    R_AUIPC,
    R_MUL,
    R_MULH,
    R_MULHSU,
    R_MULHU,
    R_DIV,
    R_DIVU,
    R_REM,
    R_REMU,
    R_LINK,
) = range(22)
N_RESULTS = 22

_RESULT_OF = {
    Opcode.LUI: R_LUI,
    Opcode.AUIPC: R_AUIPC,
    Opcode.JAL: R_LINK,
    Opcode.JALR: R_LINK,
    Opcode.ADDI: R_ADD,
    Opcode.ADD: R_ADD,
    Opcode.SUB: R_SUB,
    Opcode.ANDI: R_AND,
    Opcode.AND: R_AND,
    Opcode.ORI: R_OR,
    Opcode.OR: R_OR,
    Opcode.XORI: R_XOR,
    Opcode.XOR: R_XOR,
    Opcode.SLTI: R_SLT,
    Opcode.SLT: R_SLT,
    Opcode.SLTIU: R_SLTU,
    Opcode.SLTU: R_SLTU,
    Opcode.SLLI: R_SLL,
    Opcode.SLL: R_SLL,
    Opcode.SRLI: R_SRL,
    Opcode.SRL: R_SRL,
    Opcode.SRAI: R_SRA,
    Opcode.SRA: R_SRA,
    Opcode.MUL: R_MUL,
    Opcode.MULH: R_MULH,
    Opcode.MULHSU: R_MULHSU,
    Opcode.MULHU: R_MULHU,
    Opcode.DIV: R_DIV,
    Opcode.DIVU: R_DIVU,
    Opcode.REM: R_REM,
    Opcode.REMU: R_REMU,
}
RESULT_INDEX = _int_table(lambda opcode: _RESULT_OF.get(opcode, R_NONE))

#: Branch-condition identifiers (non-branches gather condition 0 and
#: are masked out by :data:`IS_BRANCH`).
_BRANCH_COND_OF = {
    Opcode.BEQ: 0,
    Opcode.BNE: 1,
    Opcode.BLT: 2,
    Opcode.BGE: 3,
    Opcode.BLTU: 4,
    Opcode.BGEU: 5,
}
BRANCH_COND = _int_table(lambda opcode: _BRANCH_COND_OF.get(opcode, 0))


@lru_cache(maxsize=4096)
def decode_program(program: Program) -> np.ndarray:
    """One program lowered to a read-only ``[5, n]`` int64 array.

    Rows: opcode index, rd, rs1, rs2, raw immediate.  Cached per
    program object — both executions of a test-case pair share program
    objects across their common parts, and benchmark corpora re-run
    the same programs many times.
    """
    instructions = program.instructions
    columns = np.empty((5, len(instructions)), dtype=np.int64)
    for position, instruction in enumerate(instructions):
        columns[0, position] = OP_INDEX[instruction.opcode]
        columns[1, position] = instruction.rd
        columns[2, position] = instruction.rs1
        columns[3, position] = instruction.rs2
        columns[4, position] = instruction.imm
    columns.setflags(write=False)
    return columns


def decode_batch(programs: Sequence[Program]):
    """Decode a batch into padded columns plus per-lane bounds.

    Returns ``(op, rd, rs1, rs2, imm, base, code_limit)``: five
    ``[lanes, max_len]`` int64 columns (zero-padded past each lane's
    program) and two ``[lanes]`` arrays with the base address and the
    byte length of each lane's code region.
    """
    lanes = len(programs)
    lengths = [len(program.instructions) for program in programs]
    max_len = max(lengths, default=0)
    columns = np.zeros((5, lanes, max_len), dtype=np.int64)
    for lane, program in enumerate(programs):
        decoded = decode_program(program)
        columns[:, lane, : decoded.shape[1]] = decoded
    base = np.array([program.base_address for program in programs], dtype=np.int64)
    code_limit = 4 * np.array(lengths, dtype=np.int64)
    return (
        columns[0],
        columns[1],
        columns[2],
        columns[3],
        columns[4],
        base,
        code_limit,
    )


def bit_length(values: np.ndarray) -> np.ndarray:
    """Exact ``int.bit_length`` of non-negative int64 values (< 2**32),
    via a five-step binary-search shift cascade."""
    remaining = values.copy()
    lengths = np.zeros_like(remaining)
    for shift in (16, 8, 4, 2, 1):
        big = remaining >= (np.int64(1) << shift)
        lengths += np.where(big, shift, 0)
        remaining = np.where(big, remaining >> shift, remaining)
    return lengths + (remaining > 0)


def magnitude32(values: np.ndarray, signed_mask) -> np.ndarray:
    """Vectorized :func:`repro.uarch.components.divider._magnitude`:
    two's-complement magnitude where ``signed_mask`` holds, the raw
    unsigned value otherwise."""
    negative = signed_mask & (values >= np.int64(0x8000_0000))
    return np.where(negative, (np.int64(1) << 32) - values, values)
