"""The batched functional engine: all lanes execute in lock step.

One *lane* is one program execution.  The engine keeps the register
files as a ``[lanes, 32]`` int64 array and a per-lane program counter;
each step gathers the active lanes' decoded instruction fields,
computes every result primitive for all of them at once, and selects
the per-lane result with one table gather — replacing the scalar
interpreter's per-instruction Python dispatch with a fixed number of
numpy operations per *step*, independent of the batch width.

Retirement facts (the exact content of
:class:`~repro.isa.executor.ExecRecord`) are written into columnar
``[lanes, steps]`` buffers, including the dependency distances, which
are annotated inline from per-lane last-reader/last-writer register
maps with the same before-own-accesses semantics as
:func:`repro.isa.executor.annotate_dependency_distances`.

Memory operations fall back to a short per-lane Python loop over the
(typically rare) load/store lanes of the step, mutating each lane's
own lazily-created :class:`~repro.isa.memory.SparseMemory` copy with
byte-for-byte the scalar ``_load``/``_store`` semantics.

Equivalence with :class:`~repro.isa.executor.IsaExecutor` is pinned
record-field-for-record-field by ``tests/batchsim``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.batchsim.decode import (
    BRANCH_COND,
    HAS_RD,
    HAS_RS1,
    HAS_RS2,
    IS_BRANCH,
    IS_MEMORY,
    IS_TERMINAL,
    JAL_INDEX,
    JALR_INDEX,
    N_OPCODES,
    N_RESULTS,
    OPCODE_ORDER,
    R_ADD,
    R_AND,
    R_AUIPC,
    R_DIV,
    R_DIVU,
    R_LINK,
    R_LUI,
    R_MUL,
    R_MULH,
    R_MULHSU,
    R_MULHU,
    R_OR,
    R_REM,
    R_REMU,
    R_SLL,
    R_SLT,
    R_SLTU,
    R_SRA,
    R_SRL,
    R_SUB,
    R_XOR,
    RESULT_INDEX,
    USE_IMM,
    decode_batch,
)
from repro.isa.executor import DEFAULT_MAX_STEPS, ExecutionLimitExceeded
from repro.metrics.registry import current_metrics
from repro.isa.instructions import Opcode
from repro.isa.memory import SparseMemory
from repro.isa.program import Program
from repro.isa.state import ArchState

_MASK32 = np.int64(0xFFFFFFFF)
_U_MASK32 = np.uint64(0xFFFFFFFF)
_SIGN_BIT = np.int64(0x8000_0000)
_TWO32 = np.int64(1) << 32
#: "never" sentinel for the last-reader/last-writer maps: any distance
#: computed against it exceeds every dependency window.
_NEVER = np.int64(-1) << 40

#: Columnar record fields, in buffer order.
RECORD_COLUMNS = (
    "pc",
    "next_pc",
    "pidx",
    "op",
    "rd",
    "rs1",
    "rs2",
    "imm",
    "rs1_value",
    "rs2_value",
    "rd_value",
    "mem_read_addr",
    "mem_read_data",
    "mem_write_addr",
    "mem_write_data",
    "branch_taken",
    "raw_rs1_dist",
    "raw_rs2_dist",
    "war_rd_dist",
    "waw_dist",
)


class BatchExecution:
    """The columnar functional trace of a whole batch.

    ``counts[lane]`` retirements are valid per lane; every ``[lanes,
    steps]`` column is zero past them.  Distance columns use ``0`` for
    the scalar engine's ``None`` (real distances are always >= 1).
    """

    __slots__ = RECORD_COLUMNS + (
        "programs",
        "initial_states",
        "counts",
        "final_pc",
        "final_regs",
        "memories",
        "dependency_window",
    )

    def __init__(self, programs, initial_states, columns, counts, final_pc,
                 final_regs, memories, dependency_window):
        self.programs = programs
        self.initial_states = initial_states
        for name, column in zip(RECORD_COLUMNS, columns):
            setattr(self, name, column)
        self.counts = counts
        self.final_pc = final_pc
        self.final_regs = final_regs
        #: lane -> mutated SparseMemory; absent lanes never touched memory.
        self.memories = memories
        self.dependency_window = dependency_window

    @property
    def lanes(self) -> int:
        return len(self.programs)

    @property
    def steps(self) -> int:
        return self.op.shape[1]

    def final_memory(self, lane: int) -> SparseMemory:
        """The lane's final data memory (a private copy)."""
        memory = self.memories.get(lane)
        if memory is not None:
            return memory
        state = self.initial_states[lane]
        return state.memory.copy() if state is not None else SparseMemory()


def execute_batch(
    programs: Sequence[Program],
    initial_states: Optional[Sequence[Optional[ArchState]]] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    dependency_window: int = 4,
) -> BatchExecution:
    """Run every program to completion, lock-stepped across lanes."""
    lanes = len(programs)
    if initial_states is None:
        initial_states = [None] * lanes
    op_col, rd_col, rs1_col, rs2_col, imm_col, base, code_limit = decode_batch(
        programs
    )
    max_len = op_col.shape[1]
    op_flat = op_col.ravel()
    rd_flat = rd_col.ravel()
    rs1_flat = rs1_col.ravel()
    rs2_flat = rs2_col.ravel()
    imm_flat = imm_col.ravel()

    # Batch-level opcode presence: whole classes of work (memory,
    # branches, jumps, rare primitives) are skipped for every step when
    # no decoded instruction in the batch can need them.
    present = np.zeros(N_OPCODES, dtype=bool)
    if lanes and max_len:
        valid = np.arange(max_len) < (code_limit[:, None] >> 2)
        present[op_col[valid]] = True
    has_memory = bool(np.any(IS_MEMORY & present))
    has_branch = bool(np.any(IS_BRANCH & present))
    has_terminal = bool(np.any(IS_TERMINAL & present))
    has_jal = bool(present[JAL_INDEX])
    has_jalr = bool(present[JALR_INDEX])
    needed = np.zeros(N_RESULTS, dtype=bool)
    needed[RESULT_INDEX[present]] = True

    regs = np.zeros((lanes, 32), dtype=np.int64)
    for lane, state in enumerate(initial_states):
        if state is not None:
            regs[lane] = state.regs
    regs_flat = regs.ravel()
    pc = base.copy()
    active = np.ones(lanes, dtype=bool)
    counts = np.zeros(lanes, dtype=np.int64)
    last_writer = np.full((lanes, 32), _NEVER, dtype=np.int64)
    last_reader = np.full((lanes, 32), _NEVER, dtype=np.int64)
    writer_flat = last_writer.ravel()
    reader_flat = last_reader.ravel()
    memories: dict = {}
    lane_arange = np.arange(max(lanes, 1))

    n_columns = len(RECORD_COLUMNS)
    capacity = max(int(code_limit.max()) // 4 if lanes else 0, 1)
    records = np.zeros((n_columns, lanes, capacity), dtype=np.int64)
    records_flat = records.reshape(n_columns, -1)
    stage = np.empty((n_columns, max(lanes, 1)), dtype=np.int64)

    # Engine occupancy telemetry: instruments are resolved once per
    # batch (shared no-op singletons when metrics are disabled), so the
    # per-step cost is one method call on the hot loop.
    run_metrics = current_metrics()
    lanes_active_hist = run_metrics.histogram("batchsim.lanes.active")
    memory_fallbacks = run_metrics.counter("batchsim.fallback.memory_ops")

    while True:
        lane_index = np.nonzero(active)[0]
        if lane_index.size == 0:
            break
        lanes_active_hist.observe(lane_index.size)
        pcs = pc[lane_index]
        offset = pcs - base[lane_index]
        in_bounds = (offset >= 0) & ((offset & 3) == 0) & (
            offset < code_limit[lane_index]
        )
        if not in_bounds.all():
            active[lane_index[~in_bounds]] = False
            lane_index = lane_index[in_bounds]
            if lane_index.size == 0:
                break
            pcs = pcs[in_bounds]
            offset = offset[in_bounds]
        step = counts[lane_index]
        step_max = int(step.max())
        if step_max >= max_steps:
            raise ExecutionLimitExceeded(
                "program exceeded %d retired instructions" % max_steps
            )
        if step_max >= capacity:
            capacity *= 2
            grown = np.zeros((n_columns, lanes, capacity), dtype=np.int64)
            grown[:, :, : records.shape[2]] = records
            records = grown
            records_flat = records.reshape(n_columns, -1)

        pidx = offset >> 2
        code_idx = lane_index * max_len + pidx
        op = op_flat[code_idx]
        rd = rd_flat[code_idx]
        rs1 = rs1_flat[code_idx]
        rs2 = rs2_flat[code_idx]
        imm = imm_flat[code_idx]
        has_rs1 = HAS_RS1[op]
        has_rs2 = HAS_RS2[op]
        has_rd = HAS_RD[op]
        count = lane_index.size
        arange = lane_arange[:count]
        row32 = lane_index << 5
        rs1_idx = row32 + rs1
        rs2_idx = row32 + rs2
        rd_idx = row32 + rd

        a = np.where(has_rs1, regs_flat[rs1_idx], 0)
        b_reg = np.where(has_rs2, regs_flat[rs2_idx], 0)
        a_signed = np.where(a >= _SIGN_BIT, a - _TWO32, a)
        b_reg_signed = np.where(b_reg >= _SIGN_BIT, b_reg - _TWO32, b_reg)
        use_imm = USE_IMM[op]
        b_masked = np.where(use_imm, imm & _MASK32, b_reg)
        b_signed = np.where(use_imm, imm, b_reg_signed)
        amount = np.where(use_imm, imm, b_reg) & 0x1F

        result = _select_results(
            op, arange, pcs, a, a_signed, b_masked, b_signed, amount, imm, needed
        )

        # Memory lanes: exact scalar _load/_store semantics per lane.
        memory_step = False
        if has_memory:
            is_memory = IS_MEMORY[op]
            memory_step = bool(is_memory.any())
        if memory_step:
            mem_raddr = np.zeros(count, dtype=np.int64)
            mem_rdata = np.zeros(count, dtype=np.int64)
            mem_waddr = np.zeros(count, dtype=np.int64)
            mem_wdata = np.zeros(count, dtype=np.int64)
            memory_positions = np.nonzero(is_memory)[0]
            memory_fallbacks.inc(memory_positions.size)
            for position in memory_positions:
                lane = int(lane_index[position])
                memory = memories.get(lane)
                if memory is None:
                    state = initial_states[lane]
                    memory = (
                        state.memory.copy() if state is not None else SparseMemory()
                    )
                    memories[lane] = memory
                opcode = OPCODE_ORDER[op[position]]
                address = int((a[position] + imm[position]) & _MASK32)
                if opcode is Opcode.SW:
                    data = int(b_reg[position])
                    memory.store_word(address, data)
                elif opcode is Opcode.SH:
                    data = int(b_reg[position]) & 0xFFFF
                    memory.store_halfword(address, data)
                elif opcode is Opcode.SB:
                    data = int(b_reg[position]) & 0xFF
                    memory.store_byte(address, data)
                else:
                    if opcode is Opcode.LW:
                        data = memory.load_word(address)
                        value = data
                    elif opcode is Opcode.LH:
                        data = memory.load_halfword(address)
                        value = (
                            (data - 0x10000) & 0xFFFFFFFF if data & 0x8000 else data
                        )
                    elif opcode is Opcode.LHU:
                        data = memory.load_halfword(address)
                        value = data
                    elif opcode is Opcode.LB:
                        data = memory.load_byte(address)
                        value = (data - 0x100) & 0xFFFFFFFF if data & 0x80 else data
                    else:  # LBU
                        data = memory.load_byte(address)
                        value = data
                    mem_raddr[position] = address
                    mem_rdata[position] = data
                    result[position] = value
                    continue
                mem_waddr[position] = address
                mem_wdata[position] = data

        # Branch conditions and next pc.
        branch_step = False
        next_pc = (pcs + 4) & _MASK32
        if has_branch:
            is_branch = IS_BRANCH[op]
            branch_step = bool(is_branch.any())
        if branch_step:
            conditions = np.stack(
                (
                    a == b_reg,
                    a != b_reg,
                    a_signed < b_reg_signed,
                    a_signed >= b_reg_signed,
                    a < b_reg,
                    a >= b_reg,
                )
            )
            taken = is_branch & conditions.ravel()[BRANCH_COND[op] * count + arange]
            next_pc = np.where(taken, (pcs + imm) & _MASK32, next_pc)
        if has_jal:
            is_jal = op == JAL_INDEX
            if is_jal.any():
                next_pc = np.where(is_jal, (pcs + imm) & _MASK32, next_pc)
        if has_jalr:
            is_jalr = op == JALR_INDEX
            if is_jalr.any():
                next_pc = np.where(
                    is_jalr, (a + imm) & _MASK32 & ~np.int64(1), next_pc
                )

        # Register writeback (x0 stays zero).
        writes = has_rd & (rd != 0)
        rd_value = np.where(writes, result, 0)
        regs_flat[rd_idx[writes]] = result[writes]

        # Dependency distances: computed against the maps *before* this
        # step's own accesses fold in, then reader/writer updates.
        reads_rs1 = has_rs1 & (rs1 != 0)
        reads_rs2 = has_rs2 & (rs2 != 0)
        window = dependency_window
        d1 = step - writer_flat[rs1_idx]
        d1 = np.where(reads_rs1 & (d1 <= window), d1, 0)
        d2 = step - writer_flat[rs2_idx]
        d2 = np.where(reads_rs2 & (d2 <= window), d2, 0)
        d3 = step - reader_flat[rd_idx]
        d3 = np.where(writes & (d3 <= window), d3, 0)
        d4 = step - writer_flat[rd_idx]
        d4 = np.where(writes & (d4 <= window), d4, 0)
        reader_flat[rs1_idx[reads_rs1]] = step[reads_rs1]
        reader_flat[rs2_idx[reads_rs2]] = step[reads_rs2]
        writer_flat[rd_idx[writes]] = step[writes]

        # Record scatter: the 20 columns staged as one matrix, written
        # with a single fancy-index store per step.
        staged = stage[:, :count]
        staged[0] = pcs
        staged[1] = next_pc
        staged[2] = pidx
        staged[3] = op
        staged[4] = rd
        staged[5] = rs1
        staged[6] = rs2
        staged[7] = imm
        staged[8] = a
        staged[9] = b_reg
        staged[10] = rd_value
        if memory_step:
            staged[11] = mem_raddr
            staged[12] = mem_rdata
            staged[13] = mem_waddr
            staged[14] = mem_wdata
        else:
            staged[11:15] = 0
        staged[15] = taken if branch_step else 0
        staged[16] = d1
        staged[17] = d2
        staged[18] = d3
        staged[19] = d4
        records_flat[:, lane_index * capacity + step] = staged
        counts[lane_index] = step + 1

        # Terminal ECALL/EBREAK: the lane stops with pc still at the
        # terminal instruction (the scalar engine never applies its
        # next_pc), matching IsaExecutor.run exactly.
        if has_terminal:
            terminal = IS_TERMINAL[op]
            if terminal.any():
                pc[lane_index] = np.where(terminal, pcs, next_pc)
                active[lane_index[terminal]] = False
            else:
                pc[lane_index] = next_pc
        else:
            pc[lane_index] = next_pc

    steps = int(counts.max()) if lanes else 0
    trimmed = [records[position, :, :steps] for position in range(n_columns)]
    return BatchExecution(
        list(programs),
        list(initial_states),
        trimmed,
        counts,
        pc,
        regs,
        memories,
        dependency_window,
    )


def _select_results(
    op, arange, pcs, a, a_signed, b_masked, b_signed, amount, imm, needed
):
    """Compute the needed result primitives and gather per-lane results.

    Primitive rows follow the ``R_*`` identifiers in
    :mod:`repro.batchsim.decode`; rows whose result id never appears in
    the batch (``needed`` is the batch-level presence table) stay zero
    and are never gathered.  Overflow-prone primitives (SLL, MUL low,
    MULHU) run in uint64 where wraparound is well-defined; signed
    products fit int64 exactly.
    """
    count = arange.size
    primitives = np.zeros((N_RESULTS, count), dtype=np.int64)
    if needed[R_ADD]:
        primitives[R_ADD] = (a + b_masked) & _MASK32
    if needed[R_SUB]:
        primitives[R_SUB] = (a - b_masked) & _MASK32
    if needed[R_AND]:
        primitives[R_AND] = a & b_masked
    if needed[R_OR]:
        primitives[R_OR] = a | b_masked
    if needed[R_XOR]:
        primitives[R_XOR] = a ^ b_masked
    if needed[R_SLT]:
        primitives[R_SLT] = a_signed < b_signed
    if needed[R_SLTU]:
        primitives[R_SLTU] = a < b_masked
    if needed[R_SLL]:
        primitives[R_SLL] = (
            (a.astype(np.uint64) << amount.astype(np.uint64)) & _U_MASK32
        ).astype(np.int64)
    if needed[R_SRL]:
        primitives[R_SRL] = a >> amount
    if needed[R_SRA]:
        primitives[R_SRA] = (a_signed >> amount) & _MASK32
    if needed[R_LUI]:
        primitives[R_LUI] = (imm << 12) & _MASK32
    if needed[R_AUIPC]:
        primitives[R_AUIPC] = (pcs + (imm << 12)) & _MASK32
    if needed[R_MUL] or needed[R_MULHU]:
        product_unsigned = a.astype(np.uint64) * b_masked.astype(np.uint64)
        if needed[R_MUL]:
            primitives[R_MUL] = (product_unsigned & _U_MASK32).astype(np.int64)
        if needed[R_MULHU]:
            primitives[R_MULHU] = (
                product_unsigned >> np.uint64(32)
            ).astype(np.int64)
    if needed[R_MULH]:
        primitives[R_MULH] = ((a_signed * b_signed) >> 32) & _MASK32
    if needed[R_MULHSU]:
        primitives[R_MULHSU] = ((a_signed * b_masked) >> 32) & _MASK32
    if needed[R_DIV] or needed[R_REM]:
        # RV32M division: divide-by-zero and signed-overflow specials
        # via np.where over guarded denominators (garbage quotients
        # masked out).
        divisor_signed_safe = np.where(b_signed == 0, 1, b_signed)
        dividend_abs = np.abs(a_signed)
        divisor_abs = np.abs(divisor_signed_safe)
        overflow = (a_signed == -_SIGN_BIT) & (b_signed == -1)
        if needed[R_DIV]:
            quotient = dividend_abs // divisor_abs
            quotient = np.where(
                (a_signed < 0) != (b_signed < 0), -quotient, quotient
            )
            primitives[R_DIV] = np.where(
                b_signed == 0,
                _MASK32,
                np.where(overflow, a, quotient & _MASK32),
            )
        if needed[R_REM]:
            remainder = dividend_abs % divisor_abs
            remainder = np.where(a_signed < 0, -remainder, remainder)
            primitives[R_REM] = np.where(
                b_signed == 0, a, np.where(overflow, 0, remainder & _MASK32)
            )
    if needed[R_DIVU] or needed[R_REMU]:
        divisor_unsigned_safe = np.where(b_masked == 0, 1, b_masked)
        if needed[R_DIVU]:
            primitives[R_DIVU] = np.where(
                b_masked == 0, _MASK32, a // divisor_unsigned_safe
            )
        if needed[R_REMU]:
            primitives[R_REMU] = np.where(
                b_masked == 0, a, a % divisor_unsigned_safe
            )
    if needed[R_LINK]:
        primitives[R_LINK] = (pcs + 4) & _MASK32
    return primitives.ravel()[RESULT_INDEX[op] * count + arange]


def materialize_records(execution: BatchExecution, lane: int) -> List:
    """Rebuild the lane's scalar :class:`ExecRecord` list from columns.

    Field-for-field identical to the scalar interpreter's records —
    including the ``None`` conventions for non-applicable memory,
    branch, and dependency fields.
    """
    from repro.isa.executor import ExecRecord
    from repro.batchsim.decode import IS_BRANCH, IS_LOAD, IS_STORE

    instructions = execution.programs[lane].instructions
    count = int(execution.counts[lane])
    # Bulk-convert the lane's column slices once: list indexing in the
    # record loop is an order of magnitude cheaper than per-element
    # numpy scalar reads.
    lane_slice = slice(0, count)
    ops = execution.op[lane, lane_slice].tolist()
    pcs = execution.pc[lane, lane_slice].tolist()
    next_pcs = execution.next_pc[lane, lane_slice].tolist()
    pidxs = execution.pidx[lane, lane_slice].tolist()
    rs1_values = execution.rs1_value[lane, lane_slice].tolist()
    rs2_values = execution.rs2_value[lane, lane_slice].tolist()
    rd_values = execution.rd_value[lane, lane_slice].tolist()
    read_addrs = execution.mem_read_addr[lane, lane_slice].tolist()
    read_datas = execution.mem_read_data[lane, lane_slice].tolist()
    write_addrs = execution.mem_write_addr[lane, lane_slice].tolist()
    write_datas = execution.mem_write_data[lane, lane_slice].tolist()
    takens = execution.branch_taken[lane, lane_slice].tolist()
    raw_rs1 = execution.raw_rs1_dist[lane, lane_slice].tolist()
    raw_rs2 = execution.raw_rs2_dist[lane, lane_slice].tolist()
    war_rd = execution.war_rd_dist[lane, lane_slice].tolist()
    waw = execution.waw_dist[lane, lane_slice].tolist()

    records = []
    for step in range(count):
        op = ops[step]
        record = ExecRecord(
            step,
            pcs[step],
            next_pcs[step],
            instructions[pidxs[step]],
            rs1_values[step],
            rs2_values[step],
            rd_values[step],
        )
        if IS_LOAD[op]:
            record.mem_read_addr = read_addrs[step]
            record.mem_read_data = read_datas[step]
        elif IS_STORE[op]:
            record.mem_write_addr = write_addrs[step]
            record.mem_write_data = write_datas[step]
        if IS_BRANCH[op]:
            record.branch_taken = bool(takens[step])
        record.raw_rs1_dist = raw_rs1[step] or None
        record.raw_rs2_dist = raw_rs2[step] or None
        record.war_rd_dist = war_rd[step] or None
        record.waw_dist = waw[step] or None
        records.append(record)
    return records
