"""Batched simulation façade: functional engine + per-core timing.

:func:`run_batch` is the batch analogue of :meth:`Core.simulate`: it
executes every program through the columnar engine, dispatches to the
vectorized timing model matching the core's exact type, and returns a
:class:`BatchSimulation` whose lanes can be read two ways:

- :meth:`BatchSimulation.view` — a zero-copy, attacker-sufficient view
  exposing ``trace.retirement_cycles``, ``trace.total_cycles``, and
  ``uarch_state`` (what every registered attacker observes);
- :meth:`BatchSimulation.materialize` — a full
  :class:`~repro.uarch.core.SimulationResult`, record-for-record equal
  to the scalar ``Core.simulate`` output, for callers that need the
  complete trace or final architectural state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.batchsim.engine import BatchExecution, execute_batch, materialize_records
from repro.isa.executor import DEFAULT_MAX_STEPS
from repro.isa.program import Program
from repro.isa.state import ArchState


class _BatchTrace:
    """Attacker-facing slice of one lane's trace."""

    __slots__ = ("retirement_cycles", "total_cycles")

    def __init__(self, retirement_cycles, total_cycles):
        self.retirement_cycles = retirement_cycles
        self.total_cycles = total_cycles

    def __len__(self) -> int:
        return len(self.retirement_cycles)


class _BatchResultView:
    """Duck-typed stand-in for :class:`SimulationResult` — exactly the
    attributes the registered attackers observe."""

    __slots__ = ("trace", "uarch_state")

    def __init__(self, trace, uarch_state):
        self.trace = trace
        self.uarch_state = uarch_state

    @property
    def cycles(self) -> int:
        return self.trace.total_cycles


class BatchSimulation:
    """All lanes' timing and functional outcomes, columnar."""

    def __init__(self, core, execution: BatchExecution, retire, total, uarch_states):
        self.core = core
        self.execution = execution
        self.retire = retire
        self.total = total
        self.uarch_states = uarch_states

    @property
    def lanes(self) -> int:
        return self.execution.lanes

    def view(self, lane: int) -> _BatchResultView:
        count = int(self.execution.counts[lane])
        trace = _BatchTrace(
            tuple(self.retire[lane, :count].tolist()),
            int(self.total[lane]),
        )
        return _BatchResultView(trace, self.uarch_states[lane])

    def materialize(self, lane: int):
        """The lane as a full scalar-equal :class:`SimulationResult`."""
        from repro.uarch.core import SimulationResult
        from repro.uarch.rvfi import RvfiRecord, RvfiTrace

        execution = self.execution
        count = int(execution.counts[lane])
        exec_records = materialize_records(execution, lane)
        records = [
            RvfiRecord(exec_record=record, retire_cycle=int(cycle))
            for record, cycle in zip(exec_records, self.retire[lane, :count])
        ]
        state = ArchState(
            pc=int(execution.final_pc[lane]),
            regs=[int(value) for value in execution.final_regs[lane]],
            memory=execution.final_memory(lane),
        )
        return SimulationResult(
            trace=RvfiTrace(records, int(self.total[lane])),
            final_state=state,
            uarch_state=dict(self.uarch_states[lane]),
        )


def run_batch(
    core,
    programs: Sequence[Program],
    initial_states: Optional[Sequence[Optional[ArchState]]] = None,
    max_instructions: int = DEFAULT_MAX_STEPS,
) -> BatchSimulation:
    """Simulate every program on ``core``, all lanes at once.

    ``core`` must be a batch-supported exact type (see
    :func:`repro.batchsim.supports_core`); dispatch is on exact type so
    user subclasses with overridden timing always take the scalar path.
    """
    from repro.uarch.ibex import IbexCore
    from repro.uarch.cva6 import CVA6Core

    execution = execute_batch(
        programs,
        initial_states,
        max_steps=max_instructions,
        dependency_window=core._executor.dependency_window,
    )
    if type(core) is IbexCore:
        from repro.batchsim.timing_ibex import ibex_timing

        retire, total, uarch_states = ibex_timing(core, execution)
    elif type(core) is CVA6Core:
        from repro.batchsim.timing_cva6 import cva6_timing

        retire, total, uarch_states = cva6_timing(core, execution)
    else:
        raise TypeError("core %r has no batched timing model" % (core.name,))
    return BatchSimulation(core, execution, retire, total, uarch_states)
