"""Batched columnar simulation (the ``"batch"`` fast-path mode).

This package vectorizes the evaluation hot path across whole batches
of test cases: programs decode once into structure-of-arrays columns
(:mod:`repro.batchsim.decode`), a lock-step numpy engine executes all
lanes at once (:mod:`repro.batchsim.engine`), per-core timing models
replace the per-record Python loops (:mod:`repro.batchsim.timing_ibex`,
:mod:`repro.batchsim.timing_cva6`), and distinguishing atoms are
extracted by columnar diffs (:mod:`repro.batchsim.extract`).

The scalar interpreter and timing models remain the reference oracles;
every batched path is pinned byte-identical to them by the equivalence
suite, so datasets, checkpoint keys, and service job keys are unchanged
whichever path produced them.

Numpy is the only extra dependency; :func:`available` gates every user
of the package so environments without it silently keep the scalar
paths.
"""

from __future__ import annotations

try:
    import numpy  # noqa: F401

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only without numpy
    _HAVE_NUMPY = False

#: Attackers whose observations the zero-copy batch views carry
#: (retirement cycles, total cycles, and published uarch state).
BATCH_SAFE_ATTACKERS = frozenset(
    {"retirement-timing", "total-time", "cache-state"}
)


def available() -> bool:
    """Whether the batched engine can run in this environment."""
    return _HAVE_NUMPY


def supports_core(core) -> bool:
    """Whether ``core`` has a batched timing model.

    Dispatch is on *exact* type: subclasses may override timing hooks,
    so they always fall back to the scalar path.
    """
    if not _HAVE_NUMPY:
        return False
    from repro.uarch.cva6 import CVA6Core
    from repro.uarch.ibex import IbexCore

    return type(core) is IbexCore or type(core) is CVA6Core


def run_batch(*args, **kwargs):
    """Lazy forwarder to :func:`repro.batchsim.simulate.run_batch`."""
    from repro.batchsim.simulate import run_batch as _run_batch

    return _run_batch(*args, **kwargs)


def batch_distinguishing_atoms(*args, **kwargs):
    """Lazy forwarder to
    :func:`repro.batchsim.extract.batch_distinguishing_atoms`."""
    from repro.batchsim.extract import batch_distinguishing_atoms as _extract

    return _extract(*args, **kwargs)


__all__ = [
    "BATCH_SAFE_ATTACKERS",
    "available",
    "batch_distinguishing_atoms",
    "run_batch",
    "supports_core",
]
