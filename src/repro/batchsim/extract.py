"""Columnar distinguishing-atom extraction over a whole batch.

Mirrors :meth:`repro.contracts.compiled.CompiledTemplate.distinguishing_atoms`
— the diff-aware merge over two executions — but compares whole
``[pairs, steps]`` columns at once instead of per-record feature rows.
For every feature-row slot that any atom observes, one vectorized
comparison yields the positions where the two halves of the batch
disagree; only those (sparse) positions are walked in Python to union
the affected atom ids.  Opcode divergence and length tails contribute
every atom of the unmatched opcodes, exactly as the scalar merge does.

Batch lanes are paired half-and-half: lane ``i`` of the *a* half
diffs against lane ``i + pairs`` (the *b* half).

Pinned set-identical to the scalar merge by the equivalence suite.
"""

from __future__ import annotations

import weakref
from typing import Dict, FrozenSet, List, Tuple

import numpy as np

from repro.batchsim.decode import (
    IS_BRANCH,
    IS_LOAD,
    IS_MEMORY,
    IS_STORE,
    OP_INDEX,
)
from repro.batchsim.engine import BatchExecution
from repro.contracts.compiled import (
    _SIMPLE_COUNT,
    CompiledTemplate,
    SIMPLE_SLOT_ORDER,
)

_SLOT = {source: slot for slot, source in enumerate(SIMPLE_SLOT_ORDER)}

_PLAN_CACHE: "weakref.WeakKeyDictionary[CompiledTemplate, tuple]" = (
    weakref.WeakKeyDictionary()
)


def _plan(compiled: CompiledTemplate):
    """The compiled template's slot index, keyed by opcode *index*."""
    plan = _PLAN_CACHE.get(compiled)
    if plan is None:
        slot_atoms, opcode_atoms = compiled.atom_slot_index()
        slot_atoms = {
            (OP_INDEX[opcode], slot): ids
            for (opcode, slot), ids in slot_atoms.items()
        }
        opcode_atoms = {
            OP_INDEX[opcode]: ids for opcode, ids in opcode_atoms.items()
        }
        used_slots = tuple(sorted({slot for (_, slot) in slot_atoms}))
        plan = (slot_atoms, opcode_atoms, used_slots)
        _PLAN_CACHE[compiled] = plan
    return plan


def _slot_diff(execution: BatchExecution, pairs: int, slot: int, max_distance: int):
    """``[pairs, steps]`` disagreement mask for one feature-row slot.

    Only meaningful where both halves retired the *same* opcode — the
    caller masks with the aligned-equal-opcode positions, which is what
    makes the per-kind masks (loads, stores, branches) well-defined.
    """

    def half(column):
        return column[:pairs], column[pairs:]

    op_a = execution.op[:pairs]
    if slot < _SIMPLE_COUNT:
        name = SIMPLE_SLOT_ORDER[slot]
        if name == "OP":
            # Equal by construction on aligned same-opcode positions.
            return np.zeros(op_a.shape, dtype=bool)
        if name in ("RD", "RS1", "RS2", "IMM"):
            a, b = half(getattr(execution, name.lower()))
            return a != b
        if name == "REG_RS1":
            a, b = half(execution.rs1_value)
            return a != b
        if name == "REG_RS2":
            a, b = half(execution.rs2_value)
            return a != b
        if name == "REG_RD":
            a, b = half(execution.rd_value)
            return a != b
        if name == "IS_ZERO_RS1":
            a, b = half(execution.rs1_value)
            return (a == 0) != (b == 0)
        if name == "IS_ZERO_RS2":
            a, b = half(execution.rs2_value)
            return (a == 0) != (b == 0)
        if name == "MEM_R_ADDR":
            a, b = half(execution.mem_read_addr)
            return IS_LOAD[op_a] & (a != b)
        if name == "MEM_R_DATA":
            a, b = half(execution.mem_read_data)
            return IS_LOAD[op_a] & (a != b)
        if name == "MEM_W_ADDR":
            a, b = half(execution.mem_write_addr)
            return IS_STORE[op_a] & (a != b)
        if name == "MEM_W_DATA":
            a, b = half(execution.mem_write_data)
            return IS_STORE[op_a] & (a != b)
        if name in ("IS_WORD_ALIGNED", "IS_HALF_ALIGNED"):
            is_load = IS_LOAD[op_a]
            read_a, read_b = half(execution.mem_read_addr)
            write_a, write_b = half(execution.mem_write_addr)
            address_a = np.where(is_load, read_a, write_a) & 0x3
            address_b = np.where(is_load, read_b, write_b) & 0x3
            if name == "IS_WORD_ALIGNED":
                flag_a, flag_b = address_a == 0, address_b == 0
            else:
                flag_a, flag_b = address_a != 0x3, address_b != 0x3
            return IS_MEMORY[op_a] & (flag_a != flag_b)
        if name == "BRANCH_TAKEN":
            a, b = half(execution.branch_taken)
            return IS_BRANCH[op_a] & (a != b)
        # NEW_PC
        a, b = half(execution.next_pc)
        return a != b

    # Dependency-window slot: (distance valid and <= n) booleans.
    offset = slot - _SIMPLE_COUNT
    prefix_index, distance_n = divmod(offset, max_distance)
    distance_n += 1
    column = (
        execution.raw_rs1_dist,
        execution.raw_rs2_dist,
        execution.war_rd_dist,
        execution.waw_dist,
    )[prefix_index]
    a, b = column[:pairs], column[pairs:]
    within_a = (a != 0) & (a <= distance_n)
    within_b = (b != 0) & (b <= distance_n)
    return within_a != within_b


def batch_distinguishing_atoms(
    compiled: CompiledTemplate, execution: BatchExecution, pairs: int
) -> List[FrozenSet[int]]:
    """Per-pair distinguishing-atom sets for a half-and-half batch."""
    slot_atoms, opcode_atoms, used_slots = _plan(compiled)
    counts_a = execution.counts[:pairs]
    counts_b = execution.counts[pairs:]
    op_a = execution.op[:pairs]
    op_b = execution.op[pairs:]
    steps = execution.steps
    distinguishing: List[set] = [set() for _ in range(pairs)]
    if steps == 0:
        return [frozenset(atoms) for atoms in distinguishing]

    aligned = np.minimum(counts_a, counts_b)
    position = np.arange(steps) < aligned[:, None]
    same_opcode = op_a == op_b
    matched = position & same_opcode

    # Aligned same-opcode positions: per-slot columnar diffs.
    for slot in used_slots:
        diff = matched & _slot_diff(execution, pairs, slot, compiled.max_distance)
        for pair, step in zip(*np.nonzero(diff)):
            atoms = slot_atoms.get((int(op_a[pair, step]), slot))
            if atoms:
                distinguishing[pair].update(atoms)

    # Control-flow divergence: all atoms of both opcodes apply.
    for pair, step in zip(*np.nonzero(position & ~same_opcode)):
        atoms = opcode_atoms.get(int(op_a[pair, step]))
        if atoms:
            distinguishing[pair].update(atoms)
        atoms = opcode_atoms.get(int(op_b[pair, step]))
        if atoms:
            distinguishing[pair].update(atoms)

    # Length tails: every atom of the longer side's extra records.
    for pair in np.nonzero(counts_a != counts_b)[0]:
        longer = op_a if counts_a[pair] > counts_b[pair] else op_b
        stop = int(max(counts_a[pair], counts_b[pair]))
        for step in range(int(aligned[pair]), stop):
            atoms = opcode_atoms.get(int(longer[pair, step]))
            if atoms:
                distinguishing[pair].update(atoms)

    return [frozenset(atoms) for atoms in distinguishing]
