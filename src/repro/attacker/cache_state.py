"""Final-cache-state attacker (Flush+Reload-style observation).

Neither analyzed core configuration carries a data cache, so this
attacker observes an empty state there; it becomes meaningful for
cores extended with :class:`~repro.uarch.components.cache.DirectMappedCache`
which publish their final tag array through
``SimulationResult.uarch_state``.
"""

from __future__ import annotations

from typing import Hashable

from repro.attacker.base import Attacker
from repro.uarch.core import SimulationResult


class CacheStateAttacker(Attacker):
    """Observes the final contents (tag array) of the data cache."""

    name = "cache-state"

    def __init__(self, state_key: str = "dcache_tags"):
        self.state_key = state_key

    def observe(self, result: SimulationResult) -> Hashable:
        state = getattr(result, "uarch_state", None) or {}
        return state.get(self.state_key, ())
