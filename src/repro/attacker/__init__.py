"""Microarchitectural attacker models (§II-C, §IV-C).

An attacker maps a microarchitectural execution to an observation;
two executions are attacker distinguishable iff their observations
differ.  The paper's evaluation uses the retirement-timing attacker;
the cache-state attacker is provided for extension experiments.

Attacker models are published through :data:`ATTACKER_REGISTRY` — the
single source of truth for name-to-attacker construction used by the
pipeline API and the CLI.  Names match each class's ``name`` attribute.
"""

from repro.registry import Registry
from repro.attacker.base import Attacker
from repro.attacker.retirement import RetirementTimingAttacker, TotalTimeAttacker
from repro.attacker.cache_state import CacheStateAttacker

#: All registered attacker models, keyed by ``Attacker.name``.
ATTACKER_REGISTRY = Registry("attacker", "microarchitectural attacker models")
ATTACKER_REGISTRY.register(
    RetirementTimingAttacker.name,
    RetirementTimingAttacker,
    description="per-instruction retirement cycles (the paper's model)",
)
ATTACKER_REGISTRY.register(
    TotalTimeAttacker.name,
    TotalTimeAttacker,
    description="end-to-end execution time only (ablation attacker)",
)
ATTACKER_REGISTRY.register(
    CacheStateAttacker.name,
    CacheStateAttacker,
    description="final data-cache tag state (Flush+Reload-style)",
)

__all__ = [
    "ATTACKER_REGISTRY",
    "Attacker",
    "CacheStateAttacker",
    "RetirementTimingAttacker",
    "TotalTimeAttacker",
]
