"""Microarchitectural attacker models (§II-C, §IV-C).

An attacker maps a microarchitectural execution to an observation;
two executions are attacker distinguishable iff their observations
differ.  The paper's evaluation uses the retirement-timing attacker;
the cache-state attacker is provided for extension experiments.
"""

from repro.attacker.base import Attacker
from repro.attacker.retirement import RetirementTimingAttacker, TotalTimeAttacker
from repro.attacker.cache_state import CacheStateAttacker

__all__ = [
    "Attacker",
    "CacheStateAttacker",
    "RetirementTimingAttacker",
    "TotalTimeAttacker",
]
