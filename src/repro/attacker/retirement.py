"""Timing attackers.

The paper's attacker model (§IV-C) observes the cycle at which each
instruction retires, extracted from the RVFI.  The weaker
:class:`TotalTimeAttacker` sees only the end-to-end execution time;
it is used in ablation benchmarks to show how the attacker model
changes the synthesized contract.
"""

from __future__ import annotations

from typing import Hashable

from repro.attacker.base import Attacker
from repro.uarch.core import SimulationResult


class RetirementTimingAttacker(Attacker):
    """Observes the timing of instruction retirements at cycle
    granularity (Tsunoo-style trace attacker)."""

    name = "retirement-timing"

    def observe(self, result: SimulationResult) -> Hashable:
        return result.trace.retirement_cycles


class TotalTimeAttacker(Attacker):
    """Observes only the total execution time in cycles."""

    name = "total-time"

    def observe(self, result: SimulationResult) -> Hashable:
        return result.trace.total_cycles
