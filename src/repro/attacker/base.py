"""Attacker interface."""

from __future__ import annotations

from typing import Hashable

from repro.uarch.core import SimulationResult


class Attacker:
    """Maps microarchitectural executions to attacker observations.

    The paper's ``µATK : IMPLSTATE → ATKOBS`` lifted to whole
    executions: ``observe`` consumes a finished simulation and returns
    a hashable observation.
    """

    #: Short identifier used in reports.
    name = "abstract"

    def observe(self, result: SimulationResult) -> Hashable:
        raise NotImplementedError

    def distinguishes(self, a: SimulationResult, b: SimulationResult) -> bool:
        """Whether the two executions are attacker distinguishable."""
        return self.observe(a) != self.observe(b)
