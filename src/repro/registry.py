"""String-keyed plugin registries.

Every extensible axis of the toolchain — core models, attacker models,
ILP solver backends, contract templates, and template restrictions —
is a :class:`Registry` owned by the layer that defines the plugins
(``repro.uarch``, ``repro.attacker``, ``repro.synthesis``,
``repro.contracts.riscv_template``).  The pipeline front end
(:mod:`repro.pipeline`) only ever resolves names through these
registries, so adding a scenario is one ``register`` call instead of a
fork of the experiment drivers.

Conventions:

- names are short, lower-case, dash-separated identifiers matching the
  plugin's ``name`` attribute where it has one (``"ibex"``,
  ``"cache-state"``, ``"scipy-milp"``);
- factories are zero-argument-callable by default (extra ``create``
  arguments are forwarded), so ``create(name)`` always works;
- registering an existing name raises unless ``overwrite=True`` —
  silent shadowing of a built-in would be a debugging trap;
- unknown names raise :class:`ValueError` listing the registered
  choices, so CLI typos are self-explanatory.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional


class Registry:
    """A named mapping from string keys to plugin factories."""

    def __init__(self, kind: str, description: str = ""):
        #: What the registry holds (``"core"``, ``"attacker"``, ...);
        #: used in error messages and the CLI ``list`` output.
        self.kind = kind
        self.description = description
        self._factories: Dict[str, Callable[..., Any]] = {}
        self._descriptions: Dict[str, str] = {}

    # -- registration --------------------------------------------------

    def register(
        self,
        name: str,
        factory: Optional[Callable[..., Any]] = None,
        description: str = "",
        overwrite: bool = False,
    ):
        """Register ``factory`` under ``name``.

        Usable directly (``registry.register("ibex", IbexCore)``) or as
        a decorator (``@registry.register("ibex")``).
        """
        if factory is None:
            def decorator(decorated: Callable[..., Any]) -> Callable[..., Any]:
                self.register(
                    name, decorated, description=description, overwrite=overwrite
                )
                return decorated

            return decorator
        if not overwrite and name in self._factories:
            raise ValueError(
                "%s %r is already registered (pass overwrite=True to replace)"
                % (self.kind, name)
            )
        self._factories[name] = factory
        self._descriptions[name] = description or _describe(factory)
        return factory

    def unregister(self, name: str) -> None:
        """Remove ``name`` (mainly for tests restoring a clean slate)."""
        self._require(name)
        del self._factories[name]
        del self._descriptions[name]

    # -- lookup --------------------------------------------------------

    def create(self, name: str, *args, **kwargs) -> Any:
        """Instantiate the plugin registered under ``name``."""
        return self._require(name)(*args, **kwargs)

    def get(self, name: str) -> Callable[..., Any]:
        """The raw factory registered under ``name``."""
        return self._require(name)

    def describe(self, name: str) -> str:
        self._require(name)
        return self._descriptions[name]

    def names(self) -> List[str]:
        """All registered names, sorted."""
        return sorted(self._factories)

    def _require(self, name: str) -> Callable[..., Any]:
        try:
            return self._factories[name]
        except KeyError:
            raise ValueError(
                "unknown %s %r (registered: %s)"
                % (self.kind, name, ", ".join(self.names()) or "none")
            )

    # -- collection protocol -------------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Registry(%s: %s)" % (self.kind, ", ".join(self.names()))


def _describe(factory: Callable[..., Any]) -> str:
    """First docstring line of the factory, as a fallback description."""
    doc = getattr(factory, "__doc__", None) or ""
    for line in doc.splitlines():
        line = line.strip()
        if line:
            return line
    return ""
