"""Testbench: runs programs on cores and validates ISA consistency.

This is the Python counterpart of the paper's Verilog testbench
(§V-A): it embeds a core, drives a program through it, optionally
dumps the RVFI signals to a VCD waveform, and can cross-check that the
core's architectural trace matches a pure ISA-level execution (the
correctness precondition for piggybacking atom extraction on the
microarchitectural simulation, §IV-D).
"""

from __future__ import annotations

from typing import Optional

from repro.isa.executor import DEFAULT_MAX_STEPS, IsaExecutor
from repro.isa.program import Program
from repro.isa.state import ArchState
from repro.uarch.core import Core, SimulationResult


class IsaConsistencyError(AssertionError):
    """The core's RVFI trace diverged from the ISA-level execution."""


class Testbench:
    """Drives a core model and validates its retirement stream."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, core: Core, check_isa_consistency: bool = False):
        self.core = core
        self.check_isa_consistency = check_isa_consistency

    def run(
        self,
        program: Program,
        initial_state: Optional[ArchState] = None,
        max_instructions: int = DEFAULT_MAX_STEPS,
        vcd_path: Optional[str] = None,
    ) -> SimulationResult:
        """Simulate ``program``; optionally dump the RVFI trace to VCD."""
        result = self.core.simulate(program, initial_state, max_instructions)
        self._check_monotone_retirement(result)
        if self.check_isa_consistency:
            self._check_against_isa(program, initial_state, max_instructions, result)
        if vcd_path is not None:
            from repro.vcd.rvfi_vcd import dump_rvfi_trace

            dump_rvfi_trace(result.trace, vcd_path)
        return result

    @staticmethod
    def _check_monotone_retirement(result: SimulationResult) -> None:
        cycles = result.trace.retirement_cycles
        for earlier, later in zip(cycles, cycles[1:]):
            if later < earlier:
                raise IsaConsistencyError(
                    "retirement cycles decrease: %r" % (cycles,)
                )

    @staticmethod
    def _check_against_isa(
        program: Program,
        initial_state: Optional[ArchState],
        max_instructions: int,
        result: SimulationResult,
    ) -> None:
        state = (
            initial_state.copy()
            if initial_state is not None
            else ArchState(pc=program.base_address)
        )
        state.pc = program.base_address
        isa_records = IsaExecutor().run(program, state, max_instructions)
        core_records = result.trace.exec_records
        if len(isa_records) != len(core_records):
            raise IsaConsistencyError(
                "retired %d instructions, ISA executed %d"
                % (len(core_records), len(isa_records))
            )
        for isa_record, core_record in zip(isa_records, core_records):
            if (
                isa_record.pc != core_record.pc
                or isa_record.next_pc != core_record.next_pc
                or isa_record.instruction != core_record.instruction
                or isa_record.rd_value != core_record.rd_value
            ):
                raise IsaConsistencyError(
                    "divergence at retirement %d: ISA %r vs core %r"
                    % (isa_record.index, isa_record, core_record)
                )
        if state != result.final_state:
            raise IsaConsistencyError("final architectural states differ")


def simulate(
    core: Core,
    program: Program,
    initial_state: Optional[ArchState] = None,
    max_instructions: int = DEFAULT_MAX_STEPS,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Testbench`."""
    return Testbench(core).run(program, initial_state, max_instructions)
