"""Ibex-like core model: a small 2-stage in-order RV32IM pipeline.

The timing model reproduces the leakage-relevant behaviours of the
lowRISC Ibex core in its RV32IM configuration (DESIGN.md §5):

- **Word-aligned memory interface.**  Loads crossing a 32-bit word
  boundary are split into two bus transactions; stores land in a write
  buffer and retire with flat timing.  This is the paper's headline
  Ibex finding (alignment leakage on loads, Table I).
- **Taken-branch penalty.**  A taken branch flushes the prefetcher and
  pays a fixed penalty *even when the target equals the fall-through
  pc* — the paper's second Ibex finding.
- **Early-exit divider.**  ``DIV``/``DIVU`` latency depends on operand
  magnitudes; the remainder variants use a separate constant-time path
  in this model (documented deviation, DESIGN.md §5).
- **Serial shifter.**  Shift latency grows with the shift amount,
  leaking the immediate (``SLLI``/``SRLI``/``SRAI``) or ``rs2``
  (``SLL``/``SRL``/``SRA``).
- **Multi-cycle multiplier.**  ``MUL`` and ``MULH*`` differ in latency
  (instruction leakage within the multiplication category) but are
  data-independent.
- **Non-forwarded operand ports.**  The shifter, multiplier, and
  quotient-divider operand ports lack the distance-1 forwarding path,
  so a read-after-write dependency at distance 1 into those units
  stalls one cycle (data-dependency leakage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Tuple

from repro.isa.instructions import Opcode
from repro.isa.executor import ExecRecord
from repro.uarch.components.cache import DirectMappedCache
from repro.uarch.components.divider import ConstantTimeDivider, EarlyExitDivider
from repro.uarch.components.memory_interface import WordAlignedMemoryPort
from repro.uarch.components.multiplier import FixedLatencyMultiplier
from repro.uarch.components.shifter import SerialShifter
from repro.uarch.core import Core

_SHIFT_IMMEDIATE = (Opcode.SLLI, Opcode.SRLI, Opcode.SRAI)
_SHIFT_REGISTER = (Opcode.SLL, Opcode.SRL, Opcode.SRA)
_MULTIPLY = (Opcode.MUL, Opcode.MULH, Opcode.MULHSU, Opcode.MULHU)
_DIVIDE_QUOTIENT = (Opcode.DIV, Opcode.DIVU)
_DIVIDE_REMAINDER = (Opcode.REM, Opcode.REMU)
_LOADS = (Opcode.LB, Opcode.LH, Opcode.LW, Opcode.LBU, Opcode.LHU)
_STORES = (Opcode.SB, Opcode.SH, Opcode.SW)
_BRANCHES = (
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU, Opcode.BGEU,
)


@dataclass
class IbexConfig:
    """Tunable timing parameters of the Ibex-like model."""

    #: Extra cycles paid by a taken branch (prefetch flush + refetch).
    taken_branch_penalty: int = 2
    #: Cycles paid by unconditional jumps on top of the base cycle.
    jump_penalty: int = 1
    #: Serial shifter step width in bits.
    shifter_step: int = 8
    #: Low-product multiplier latency.
    mul_cycles: int = 3
    #: High-product multiplier latency.
    mulh_cycles: int = 4
    #: Constant latency of the remainder path.
    remainder_cycles: int = 20
    #: Cycles per bus transaction for loads.
    load_transaction_cycles: int = 1
    #: Store (write-buffer accept) latency.
    store_cycles: int = 1
    #: Stall when a non-forwarded unit reads a result produced one
    #: instruction earlier.
    hazard_stall_cycles: int = 1
    #: Model an RV32IMC fetch unit: instructions are laid out with
    #: their compressed (16-bit) encodings where one exists, and an
    #: uncompressed instruction that straddles a 32-bit fetch boundary
    #: pays an extra fetch cycle.  Timing then depends on *encoding*
    #: fields (which operands/immediates are compressible) — the
    #: instruction-leakage (IL) channel of RV32IMC cores.
    compressed_fetch: bool = False
    #: Extra cycles for a fetch-boundary-straddling instruction.
    fetch_straddle_penalty: int = 1
    #: Attach a direct-mapped data cache (extension experiments; the
    #: analyzed Ibex configuration has none).  Loads then have
    #: address-dependent latency (memory leakage, ``ML``) and the
    #: final tag array becomes attacker-observable state for the
    #: cache-state attacker.
    dcache: bool = False
    dcache_line_size: int = 16
    dcache_line_count: int = 16
    dcache_hit_cycles: int = 1
    dcache_miss_cycles: int = 6

    shifter: SerialShifter = field(init=False)
    multiplier: FixedLatencyMultiplier = field(init=False)
    divider: EarlyExitDivider = field(init=False)
    remainder_divider: ConstantTimeDivider = field(init=False)
    memory_port: WordAlignedMemoryPort = field(init=False)

    def __post_init__(self) -> None:
        self.shifter = SerialShifter(step=self.shifter_step)
        self.multiplier = FixedLatencyMultiplier(
            cycles=self.mul_cycles, high_cycles=self.mulh_cycles
        )
        self.divider = EarlyExitDivider()
        self.remainder_divider = ConstantTimeDivider(cycles=self.remainder_cycles)
        self.memory_port = WordAlignedMemoryPort(
            cycles_per_transaction=self.load_transaction_cycles,
            store_cycles=self.store_cycles,
        )


@lru_cache(maxsize=4096)
def _straddling_indices_cached(program) -> frozenset:
    """Fetch-layout pass behind :meth:`IbexCore._straddling_instruction_indices`.

    Keyed on the (hashable, immutable) program object.  This pays off
    when the same program is simulated repeatedly — security audits,
    testbench sweeps, attacker comparisons — where the layout pass
    previously re-ran on every ``simulate`` call.  For one-shot
    generated corpora (distinct programs) the tuple hash costs about
    as much as the layout pass it replaces, and the LRU bound keeps
    memory flat.
    """
    from repro.isa.compressed import code_size

    straddling = set()
    offset = 0
    for index, instruction in enumerate(program):
        size = code_size(instruction)
        if size == 4 and offset % 4 == 2:
            straddling.add(index)
        offset += size
    return frozenset(straddling)


class IbexCore(Core):
    """Cycle-accurate timing model of the 2-stage Ibex-like pipeline.

    The pipeline is blocking: one instruction occupies the ID/EX stage
    at a time, so the retirement cycle of instruction *i* is the
    retirement cycle of *i-1* plus *i*'s occupancy (base latency plus
    any operand-port stall).
    """

    name = "ibex"

    #: Opcodes whose operand ports lack distance-1 forwarding.
    NON_FORWARDED_CONSUMERS = frozenset(
        _SHIFT_IMMEDIATE + _SHIFT_REGISTER + _MULTIPLY + _DIVIDE_QUOTIENT
    )

    def __init__(self, config: IbexConfig = None, dependency_window: int = 4):
        super().__init__(dependency_window=dependency_window)
        self.config = config if config is not None else IbexConfig()
        self._dcache = None
        if self.config.dcache:
            self._dcache = DirectMappedCache(
                line_size=self.config.dcache_line_size,
                line_count=self.config.dcache_line_count,
                hit_cycles=self.config.dcache_hit_cycles,
                miss_cycles=self.config.dcache_miss_cycles,
            )

    def reset(self) -> None:
        if self._dcache is not None:
            self._dcache.reset()

    def _uarch_state(self):
        if self._dcache is None:
            return {}
        return {"dcache_tags": self._dcache.final_state()}

    def _timing(self, records: List[ExecRecord], program) -> Tuple[List[int], int]:
        straddlers = (
            self._straddling_instruction_indices(program)
            if self.config.compressed_fetch
            else frozenset()
        )
        base_address = program.base_address
        config = self.config
        hazard_cycles = config.hazard_stall_cycles
        timing_of = self._TIMING
        straddle_penalty = config.fetch_straddle_penalty
        cycle = 1  # cycle 0: reset; first instruction enters ID/EX at 1
        retire_cycles: List[int] = []
        for record in records:
            non_forwarded, occupancy = timing_of[record.instruction.opcode]
            if non_forwarded and (
                record.raw_rs1_dist == 1 or record.raw_rs2_dist == 1
            ):
                cycle += hazard_cycles
            cycle += 1 if occupancy is None else occupancy(self, record)
            if straddlers and (record.pc - base_address) // 4 in straddlers:
                cycle += straddle_penalty
            retire_cycles.append(cycle)
        return retire_cycles, cycle + 1  # +1: writeback drain

    @staticmethod
    def _straddling_instruction_indices(program) -> frozenset:
        """Indices of uncompressed instructions that straddle a 32-bit
        fetch boundary in the program's RV32IMC layout.

        Cached per program: the fetch layout is a pure function of the
        instruction sequence, and each test-case program is simulated
        at least twice (both executions share program objects across
        the pair's common parts), so recomputing it per ``simulate``
        call wasted a full pass over the program.
        """
        return _straddling_indices_cached(program)

    # Per-opcode occupancy handlers (cycles an instruction occupies
    # the ID/EX stage); the dispatch table below replaces a nine-way
    # tuple-membership chain on the per-retirement hot path.  The
    # hazard-stall check lives inline in ``_timing``.

    def _occupancy_shift_immediate(self, record: ExecRecord) -> int:
        return self.config.shifter.latency(record.instruction.imm)

    def _occupancy_shift_register(self, record: ExecRecord) -> int:
        return self.config.shifter.latency(record.rs2_value)

    def _occupancy_multiply(self, record: ExecRecord) -> int:
        return self.config.multiplier.latency(
            record.instruction.opcode, record.rs1_value, record.rs2_value
        )

    def _occupancy_divide_quotient(self, record: ExecRecord) -> int:
        return self.config.divider.latency(
            record.instruction.opcode, record.rs1_value, record.rs2_value
        )

    def _occupancy_divide_remainder(self, record: ExecRecord) -> int:
        return self.config.remainder_divider.latency(
            record.instruction.opcode, record.rs1_value, record.rs2_value
        )

    def _occupancy_load(self, record: ExecRecord) -> int:
        config = self.config
        width = record.instruction.memory_width
        if self._dcache is not None:
            transactions = config.memory_port.load_transactions(
                record.mem_read_addr, width
            )
            return 1 + sum(
                self._dcache.access((record.mem_read_addr & ~0x3) + 4 * i)
                for i in range(transactions)
            )
        return 1 + config.memory_port.load_latency(record.mem_read_addr, width)

    def _occupancy_store(self, record: ExecRecord) -> int:
        if self._dcache is not None:
            # Write-allocate: stores touch the cache but retire
            # through the write buffer with flat timing.
            self._dcache.access(record.mem_write_addr & ~0x3)
        return 1 + self.config.memory_port.store_latency(
            record.mem_write_addr, record.instruction.memory_width
        )

    def _occupancy_branch(self, record: ExecRecord) -> int:
        # The penalty applies whenever the branch is taken — even if
        # the target is the fall-through pc (paper finding #2).
        if record.branch_taken:
            return 1 + self.config.taken_branch_penalty
        return 1

    def _occupancy_jump(self, record: ExecRecord) -> int:
        return 1 + self.config.jump_penalty

    #: opcode -> occupancy handler; opcodes absent from the table take
    #: the single base cycle.
    _OCCUPANCY = {}
    for _opcode in _SHIFT_IMMEDIATE:
        _OCCUPANCY[_opcode] = _occupancy_shift_immediate
    for _opcode in _SHIFT_REGISTER:
        _OCCUPANCY[_opcode] = _occupancy_shift_register
    for _opcode in _MULTIPLY:
        _OCCUPANCY[_opcode] = _occupancy_multiply
    for _opcode in _DIVIDE_QUOTIENT:
        _OCCUPANCY[_opcode] = _occupancy_divide_quotient
    for _opcode in _DIVIDE_REMAINDER:
        _OCCUPANCY[_opcode] = _occupancy_divide_remainder
    for _opcode in _LOADS:
        _OCCUPANCY[_opcode] = _occupancy_load
    for _opcode in _STORES:
        _OCCUPANCY[_opcode] = _occupancy_store
    for _opcode in _BRANCHES:
        _OCCUPANCY[_opcode] = _occupancy_branch
    for _opcode in (Opcode.JAL, Opcode.JALR):
        _OCCUPANCY[_opcode] = _occupancy_jump

    #: opcode -> (lacks distance-1 forwarding, occupancy handler) — a
    #: single lookup per retirement covers both timing decisions.
    _TIMING = {}
    for _opcode in Opcode:
        _TIMING[_opcode] = (
            _opcode in NON_FORWARDED_CONSUMERS,
            _OCCUPANCY.get(_opcode),
        )
    del _opcode
