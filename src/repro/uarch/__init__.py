"""Cycle-accurate microarchitectural core models with RVFI output.

This package is the reproduction's substitute for RTL simulation: each
core is a behavioural, cycle-accurate timing model layered on top of the
functional ISA executor, exposing retirement events through the RISC-V
Formal Interface (:mod:`repro.uarch.rvfi`) exactly as the paper's
Verilog testbench does.

Core models are published through :data:`CORE_REGISTRY` — the single
source of truth for name-to-core construction used by the pipeline API,
the experiment drivers, and the CLI.  Adding a core model is one
``CORE_REGISTRY.register("name", Factory)`` call.
"""

from repro.registry import Registry
from repro.uarch.rvfi import RvfiRecord, RvfiTrace
from repro.uarch.core import Core, SimulationResult
from repro.uarch.ibex import IbexCore, IbexConfig
from repro.uarch.cva6 import CVA6Core, CVA6Config
from repro.uarch.testbench import Testbench, simulate

#: All registered core models, keyed by ``Core.name``-style identifiers.
CORE_REGISTRY = Registry("core", "microarchitectural core models")
CORE_REGISTRY.register(
    "ibex",
    IbexCore,
    description="2-stage in-order Ibex-like core (word-aligned memory)",
)
CORE_REGISTRY.register(
    "cva6",
    CVA6Core,
    description="6-stage in-order CVA6-like core (bimodal predictor)",
)


def _ibex_dcache() -> IbexCore:
    return IbexCore(IbexConfig(dcache=True))


CORE_REGISTRY.register(
    "ibex-dcache",
    _ibex_dcache,
    description="Ibex-like core extended with a direct-mapped data cache",
)

__all__ = [
    "CORE_REGISTRY",
    "CVA6Config",
    "CVA6Core",
    "Core",
    "IbexConfig",
    "IbexCore",
    "RvfiRecord",
    "RvfiTrace",
    "SimulationResult",
    "Testbench",
    "simulate",
]
