"""Cycle-accurate microarchitectural core models with RVFI output.

This package is the reproduction's substitute for RTL simulation: each
core is a behavioural, cycle-accurate timing model layered on top of the
functional ISA executor, exposing retirement events through the RISC-V
Formal Interface (:mod:`repro.uarch.rvfi`) exactly as the paper's
Verilog testbench does.
"""

from repro.uarch.rvfi import RvfiRecord, RvfiTrace
from repro.uarch.core import Core, SimulationResult
from repro.uarch.ibex import IbexCore, IbexConfig
from repro.uarch.cva6 import CVA6Core, CVA6Config
from repro.uarch.testbench import Testbench, simulate

__all__ = [
    "CVA6Config",
    "CVA6Core",
    "Core",
    "IbexConfig",
    "IbexCore",
    "RvfiRecord",
    "RvfiTrace",
    "SimulationResult",
    "Testbench",
    "simulate",
]
