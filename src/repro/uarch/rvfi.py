"""RISC-V Formal Interface (RVFI) retirement records.

The RVFI is the paper's core-agnostic observation point: every core
model emits one :class:`RvfiRecord` per retired instruction, carrying
both the architectural payload (used to evaluate contract atoms) and
the cycle at which the instruction retired (used by the retirement-
timing attacker).

An :class:`RvfiRecord` wraps the functional
:class:`~repro.isa.executor.ExecRecord` so the contract layer can
evaluate atoms against either a pure ISA execution or a
microarchitectural simulation — mirroring how the paper piggybacks
atom extraction on the RVFI (§IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.isa.encoding import encode_instruction
from repro.isa.executor import ExecRecord


@dataclass(slots=True)
class RvfiRecord:
    """One RVFI retirement event.

    Field names follow the RVFI specification where applicable
    (``order``, ``insn``, ``pc_rdata``, ``pc_wdata``, ...); the
    architectural payload is delegated to the wrapped ``exec_record``.
    One record is allocated per retired instruction of every
    simulation, hence the ``__slots__`` backing.
    """

    exec_record: ExecRecord
    retire_cycle: int

    @property
    def order(self) -> int:
        return self.exec_record.index

    @property
    def insn(self) -> int:
        return encode_instruction(self.exec_record.instruction)

    @property
    def pc_rdata(self) -> int:
        return self.exec_record.pc

    @property
    def pc_wdata(self) -> int:
        return self.exec_record.next_pc

    @property
    def rs1_rdata(self) -> int:
        return self.exec_record.rs1_value

    @property
    def rs2_rdata(self) -> int:
        return self.exec_record.rs2_value

    @property
    def rd_wdata(self) -> int:
        return self.exec_record.rd_value

    @property
    def mem_addr(self) -> Optional[int]:
        return self.exec_record.memory_address

    @property
    def mem_rdata(self) -> Optional[int]:
        return self.exec_record.mem_read_data

    @property
    def mem_wdata(self) -> Optional[int]:
        return self.exec_record.mem_write_data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "RvfiRecord(order=%d, pc=0x%08x, cycle=%d)" % (
            self.order,
            self.pc_rdata,
            self.retire_cycle,
        )


class RvfiTrace:
    """The full retirement trace of one program execution."""

    __slots__ = ("records", "total_cycles")

    def __init__(self, records: Sequence[RvfiRecord], total_cycles: int):
        self.records: Tuple[RvfiRecord, ...] = tuple(records)
        self.total_cycles = total_cycles
        if self.records:
            last = max(record.retire_cycle for record in self.records)
            if total_cycles < last:
                raise ValueError(
                    "total_cycles (%d) earlier than last retirement (%d)"
                    % (total_cycles, last)
                )

    @property
    def retirement_cycles(self) -> Tuple[int, ...]:
        """The attacker-visible timing signature (§IV-C)."""
        return tuple(record.retire_cycle for record in self.records)

    @property
    def exec_records(self) -> List[ExecRecord]:
        """The architectural trace, as extracted from the RVFI."""
        return [record.exec_record for record in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[RvfiRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> RvfiRecord:
        return self.records[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "RvfiTrace(%d retirements, %d cycles)" % (
            len(self.records),
            self.total_cycles,
        )
