"""Branch-predictor models.

The predictor state is part of the *microarchitectural* state, which
test cases hold equal between the two programs (§II-D requires
``σ_IMPL = σ'_IMPL``); predictors therefore start from the same reset
state for every simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class Prediction:
    """A fetch-time prediction: direction plus (optional) target."""

    taken: bool
    target: Optional[int] = None


class BranchPredictor:
    """Interface for direction+target prediction with update."""

    def predict(self, pc: int) -> Prediction:
        raise NotImplementedError

    def update(self, pc: int, taken: bool, target: int) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class StaticNotTakenPredictor(BranchPredictor):
    """Always predicts not-taken (Ibex has no dynamic predictor)."""

    def predict(self, pc: int) -> Prediction:
        return Prediction(taken=False)

    def update(self, pc: int, taken: bool, target: int) -> None:
        pass

    def reset(self) -> None:
        pass


class BimodalPredictor(BranchPredictor):
    """2-bit saturating-counter BHT plus a direct-mapped BTB (CVA6-style).

    A taken prediction is only useful with a BTB hit (otherwise the
    target is unknown at fetch); this mirrors CVA6's frontend.
    """

    COUNTER_MAX = 3
    TAKEN_THRESHOLD = 2

    def __init__(self, entries: int = 64, initial_counter: int = 1):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if not 0 <= initial_counter <= self.COUNTER_MAX:
            raise ValueError("initial counter out of range")
        self.entries = entries
        self.initial_counter = initial_counter
        self._counters: List[int] = []
        self._btb_tags: List[Optional[int]] = []
        self._btb_targets: List[int] = []
        self.reset()

    def reset(self) -> None:
        self._counters = [self.initial_counter] * self.entries
        self._btb_tags = [None] * self.entries
        self._btb_targets = [0] * self.entries

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> Prediction:
        index = self._index(pc)
        taken = self._counters[index] >= self.TAKEN_THRESHOLD
        if taken and self._btb_tags[index] == pc:
            return Prediction(taken=True, target=self._btb_targets[index])
        return Prediction(taken=False)

    def update(self, pc: int, taken: bool, target: int) -> None:
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(self.COUNTER_MAX, counter + 1)
            self._btb_tags[index] = pc
            self._btb_targets[index] = target
        else:
            self._counters[index] = max(0, counter - 1)
