"""Divider latency models.

Real embedded RISC-V cores (both Ibex and CVA6) use iterative dividers
whose latency depends on the operand values — the canonical source of
the paper's register-leakage (``RL``) atoms on division instructions.
"""

from __future__ import annotations

from repro.isa.instructions import Opcode

_MASK32 = 0xFFFFFFFF
_SIGN_BIT = 0x80000000

SIGNED_OPCODES = frozenset({Opcode.DIV, Opcode.REM})
QUOTIENT_OPCODES = frozenset({Opcode.DIV, Opcode.DIVU})


def _magnitude(value: int, signed: bool) -> int:
    if signed and value & _SIGN_BIT:
        return (0x1_0000_0000 - value) & _MASK32
    return value


def _significant_bits(value: int) -> int:
    return value.bit_length()


class Divider:
    """Interface: map a division instruction's operands to a latency."""

    def latency(self, opcode: Opcode, dividend: int, divisor: int) -> int:
        raise NotImplementedError


class ConstantTimeDivider(Divider):
    """A data-independent divider (as mandated by e.g. the Zkt profile)."""

    def __init__(self, cycles: int = 18):
        if cycles < 1:
            raise ValueError("divider latency must be positive")
        self.cycles = cycles

    def latency(self, opcode: Opcode, dividend: int, divisor: int) -> int:
        return self.cycles


class EarlyExitDivider(Divider):
    """Iterative restoring divider with early termination.

    The iteration count tracks the number of significant bits of the
    dividend's magnitude (one quotient bit per cycle, skipping leading
    zeros), plus a fixed pre/post-processing overhead.  Division by
    zero and the trivial ``dividend < divisor`` case exit early — both
    behaviours are documented for the Ibex divider.
    """

    def __init__(self, base_cycles: int = 3, zero_cycles: int = 2, trivial_cycles: int = 2):
        self.base_cycles = base_cycles
        self.zero_cycles = zero_cycles
        self.trivial_cycles = trivial_cycles

    def latency(self, opcode: Opcode, dividend: int, divisor: int) -> int:
        signed = opcode in SIGNED_OPCODES
        dividend_magnitude = _magnitude(dividend & _MASK32, signed)
        divisor_magnitude = _magnitude(divisor & _MASK32, signed)
        if divisor_magnitude == 0:
            return self.zero_cycles
        if dividend_magnitude < divisor_magnitude:
            return self.trivial_cycles
        iterations = (
            _significant_bits(dividend_magnitude)
            - _significant_bits(divisor_magnitude)
            + 1
        )
        return self.base_cycles + iterations
