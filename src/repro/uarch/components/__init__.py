"""Reusable microarchitectural timing components.

Each component models the *timing* of a functional unit; functional
semantics always come from the ISA executor.  The components are the
knobs through which the core models realize the leakage behaviours
catalogued in DESIGN.md §5.
"""

from repro.uarch.components.divider import (
    ConstantTimeDivider,
    Divider,
    EarlyExitDivider,
)
from repro.uarch.components.multiplier import (
    FixedLatencyMultiplier,
    Multiplier,
    ZeroSkipMultiplier,
)
from repro.uarch.components.shifter import BarrelShifter, SerialShifter, Shifter
from repro.uarch.components.memory_interface import (
    FixedLatencyMemoryPort,
    MemoryPort,
    WordAlignedMemoryPort,
)
from repro.uarch.components.branch_predictor import (
    BimodalPredictor,
    BranchPredictor,
    Prediction,
    StaticNotTakenPredictor,
)
from repro.uarch.components.cache import DirectMappedCache

__all__ = [
    "BarrelShifter",
    "BimodalPredictor",
    "BranchPredictor",
    "ConstantTimeDivider",
    "DirectMappedCache",
    "Divider",
    "EarlyExitDivider",
    "FixedLatencyMemoryPort",
    "FixedLatencyMultiplier",
    "MemoryPort",
    "Multiplier",
    "Prediction",
    "SerialShifter",
    "Shifter",
    "StaticNotTakenPredictor",
    "WordAlignedMemoryPort",
    "ZeroSkipMultiplier",
]
