"""Multiplier latency models."""

from __future__ import annotations

from typing import Dict, Optional

from repro.isa.instructions import Opcode

MULTIPLY_OPCODES = (Opcode.MUL, Opcode.MULH, Opcode.MULHSU, Opcode.MULHU)


class Multiplier:
    """Interface: map a multiply instruction's operands to a latency."""

    def latency(self, opcode: Opcode, lhs: int, rhs: int) -> int:
        raise NotImplementedError


class FixedLatencyMultiplier(Multiplier):
    """Data-independent multiplier with per-opcode latencies.

    Ibex's "slow" multiplier computes low products in fewer passes than
    high products, so ``MUL`` and ``MULH*`` legitimately differ — an
    instruction-leakage (``IL``/``OP``) source within the
    multiplication category.
    """

    def __init__(self, cycles: int = 3, high_cycles: Optional[int] = None):
        if cycles < 1:
            raise ValueError("multiplier latency must be positive")
        self.cycles_by_opcode: Dict[Opcode, int] = {
            Opcode.MUL: cycles,
            Opcode.MULH: high_cycles if high_cycles is not None else cycles,
            Opcode.MULHSU: high_cycles if high_cycles is not None else cycles,
            Opcode.MULHU: high_cycles if high_cycles is not None else cycles,
        }

    def latency(self, opcode: Opcode, lhs: int, rhs: int) -> int:
        return self.cycles_by_opcode[opcode]


class ZeroSkipMultiplier(Multiplier):
    """Multiplier with a clock-gated fast path for zero operands.

    If either operand is zero the partial-product accumulation is
    skipped entirely — a register-leakage (``RL``) source, as the
    latency now reveals whether an operand was zero.
    """

    def __init__(self, cycles: int = 2, zero_cycles: int = 1):
        if zero_cycles > cycles:
            raise ValueError("fast path must not be slower than the normal path")
        self.cycles = cycles
        self.zero_cycles = zero_cycles

    def latency(self, opcode: Opcode, lhs: int, rhs: int) -> int:
        if lhs == 0 or rhs == 0:
            return self.zero_cycles
        return self.cycles
