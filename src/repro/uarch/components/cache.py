"""A direct-mapped data-cache model.

Neither analyzed core configuration in the paper has a data cache that
shows in retirement timing (Ibex's config has none; CVA6's interface is
modelled as fixed-latency).  This component exists for the *extension*
experiments: plugging it into a core creates address-dependent timing
(``ML``/``MEM_R_ADDR`` leakage) and final-cache-state attackers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class DirectMappedCache:
    """Direct-mapped cache with configurable geometry.

    Tracks hit/miss per access; the tag array is the attacker-visible
    "final cache state" used by Flush+Reload-style attacker models.
    """

    def __init__(
        self,
        line_size: int = 16,
        line_count: int = 64,
        hit_cycles: int = 1,
        miss_cycles: int = 10,
    ):
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line size must be a positive power of two")
        if line_count <= 0 or line_count & (line_count - 1):
            raise ValueError("line count must be a positive power of two")
        self.line_size = line_size
        self.line_count = line_count
        self.hit_cycles = hit_cycles
        self.miss_cycles = miss_cycles
        self._tags: List[Optional[int]] = [None] * line_count
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self._tags = [None] * self.line_count
        self.hits = 0
        self.misses = 0

    def _locate(self, address: int) -> Tuple[int, int]:
        line_address = address // self.line_size
        return line_address % self.line_count, line_address // self.line_count

    def access(self, address: int) -> int:
        """Access ``address``; returns the latency and updates state."""
        index, tag = self._locate(address)
        if self._tags[index] == tag:
            self.hits += 1
            return self.hit_cycles
        self.misses += 1
        self._tags[index] = tag
        return self.miss_cycles

    def contains(self, address: int) -> bool:
        index, tag = self._locate(address)
        return self._tags[index] == tag

    def final_state(self) -> Tuple[Optional[int], ...]:
        """The tag array — an attacker observation for cache attackers."""
        return tuple(self._tags)
