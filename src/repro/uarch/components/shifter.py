"""Shifter latency models."""

from __future__ import annotations


class Shifter:
    """Interface: map a shift amount to a latency."""

    def latency(self, shift_amount: int) -> int:
        raise NotImplementedError


class BarrelShifter(Shifter):
    """Single-cycle barrel shifter (data-independent)."""

    def latency(self, shift_amount: int) -> int:
        return 1


class SerialShifter(Shifter):
    """Iterative shifter that moves ``step`` bits per cycle.

    Area-optimized embedded cores shift serially; the latency then
    reveals the shift amount — an ``IL``/``IMM`` leak for immediate
    shifts and an ``RL``/``REG_RS2`` leak for register shifts.
    """

    def __init__(self, step: int = 8):
        if not 1 <= step <= 32:
            raise ValueError("shift step must be in 1..32")
        self.step = step

    def latency(self, shift_amount: int) -> int:
        shift_amount &= 0x1F
        return 1 + shift_amount // self.step
