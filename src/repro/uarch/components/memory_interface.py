"""Data-memory port timing models.

The paper's headline Ibex finding — loads leak whether their address is
aligned — stems from Ibex's word-aligned memory interface: an access
that straddles a word boundary is split into two bus transactions.
:class:`WordAlignedMemoryPort` reproduces exactly that; CVA6's more
complex interface hides individual accesses behind a fixed-latency
cache port (:class:`FixedLatencyMemoryPort`).
"""

from __future__ import annotations


class MemoryPort:
    """Interface: map (address, width in bytes) to an access latency."""

    def load_latency(self, address: int, width: int) -> int:
        raise NotImplementedError

    def store_latency(self, address: int, width: int) -> int:
        raise NotImplementedError


def crosses_word_boundary(address: int, width: int) -> bool:
    """Whether an access of ``width`` bytes at ``address`` spans two
    aligned 32-bit words."""
    return (address & 0x3) + width > 4


class WordAlignedMemoryPort(MemoryPort):
    """A bus that only issues word-aligned transactions (Ibex-style).

    Loads pay ``cycles_per_transaction`` per bus transaction; an access
    crossing a word boundary needs two.  Stores are absorbed by a
    single-entry write buffer, so their retirement timing is flat
    regardless of alignment (matching the analyzed Ibex configuration,
    Table I: ``AL`` applies to loads only).
    """

    def __init__(self, cycles_per_transaction: int = 1, store_cycles: int = 1):
        if cycles_per_transaction < 1 or store_cycles < 1:
            raise ValueError("latencies must be positive")
        self.cycles_per_transaction = cycles_per_transaction
        self.store_cycles = store_cycles

    def load_transactions(self, address: int, width: int) -> int:
        return 2 if crosses_word_boundary(address, width) else 1

    def load_latency(self, address: int, width: int) -> int:
        return self.cycles_per_transaction * self.load_transactions(address, width)

    def store_latency(self, address: int, width: int) -> int:
        return self.store_cycles


class FixedLatencyMemoryPort(MemoryPort):
    """An idealized cache port with uniform hit latency (CVA6-style).

    Nothing about the access — address, alignment, or data — shows in
    the timing, which is why the synthesized CVA6 contract has no
    memory or alignment leakage (Table II).
    """

    def __init__(self, load_cycles: int = 2, store_cycles: int = 1):
        if load_cycles < 1 or store_cycles < 1:
            raise ValueError("latencies must be positive")
        self.load_cycles = load_cycles
        self.store_cycles = store_cycles

    def load_latency(self, address: int, width: int) -> int:
        return self.load_cycles

    def store_latency(self, address: int, width: int) -> int:
        return self.store_cycles
