"""Base interface for cycle-accurate core models.

A core model layers a timing model over the functional ISA executor:
``simulate`` runs a program to completion and returns the RVFI
retirement trace plus the final architectural state.  The contract
toolchain only ever interacts with cores through this interface, so
adding a new processor (as the paper argues for RVFI-compliant cores)
requires no changes elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.isa.executor import DEFAULT_MAX_STEPS, ExecRecord, IsaExecutor
from repro.isa.program import Program
from repro.isa.state import ArchState
from repro.uarch.rvfi import RvfiRecord, RvfiTrace


@dataclass
class SimulationResult:
    """Outcome of simulating one program on a core.

    ``uarch_state`` carries optional attacker-visible microarchitectural
    residue (e.g. final cache tags) published by extended core models.
    """

    trace: RvfiTrace
    final_state: ArchState
    uarch_state: Dict[str, Hashable] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.trace.total_cycles

    @property
    def retired_instructions(self) -> int:
        return len(self.trace)


class Core:
    """Abstract core: functional execution + subclass-provided timing."""

    #: Human-readable core name (e.g. ``"ibex"``).
    name = "abstract"

    def __init__(self, dependency_window: int = 4):
        self._executor = IsaExecutor(dependency_window=dependency_window)

    def reset(self) -> None:
        """Reset all microarchitectural state (predictors, buffers).

        Called automatically at the start of every simulation so that
        test cases always start from equal microarchitectural states
        (the paper's ``σ_IMPL = σ'_IMPL`` requirement).
        """

    def simulate(
        self,
        program: Program,
        initial_state: Optional[ArchState] = None,
        max_instructions: int = DEFAULT_MAX_STEPS,
    ) -> SimulationResult:
        """Run ``program`` and return its RVFI trace and final state."""
        state = (
            initial_state.copy()
            if initial_state is not None
            else ArchState(pc=program.base_address)
        )
        if initial_state is not None and state.pc != program.base_address:
            state.pc = program.base_address
        self.reset()
        exec_records = self._executor.run(program, state, max_instructions)
        retire_cycles, total_cycles = self._timing(exec_records, program)
        if len(retire_cycles) != len(exec_records):
            raise AssertionError(
                "timing model produced %d retirements for %d instructions"
                % (len(retire_cycles), len(exec_records))
            )
        records = [
            RvfiRecord(exec_record=exec_record, retire_cycle=cycle)
            for exec_record, cycle in zip(exec_records, retire_cycles)
        ]
        return SimulationResult(
            trace=RvfiTrace(records, total_cycles),
            final_state=state,
            uarch_state=self._uarch_state(),
        )

    def simulate_batch(
        self,
        programs: List[Program],
        initial_states: Optional[List[Optional[ArchState]]] = None,
        max_instructions: int = DEFAULT_MAX_STEPS,
    ) -> List[SimulationResult]:
        """Run a batch of programs; the batch-first primary surface.

        Cores with a vectorized timing model (see
        :func:`repro.batchsim.supports_core`) simulate all programs at
        once through the columnar engine; every other core falls back
        to per-program :meth:`simulate` calls.  Either way the results
        are byte-identical to sequential ``simulate`` calls — the
        batched path is pinned against the scalar one by the
        equivalence suite.
        """
        if initial_states is not None and len(initial_states) != len(programs):
            raise ValueError(
                "got %d initial states for %d programs"
                % (len(initial_states), len(programs))
            )
        from repro import batchsim

        if programs and batchsim.supports_core(self):
            simulation = batchsim.run_batch(
                self, programs, initial_states, max_instructions
            )
            return [simulation.materialize(lane) for lane in range(len(programs))]
        if initial_states is None:
            initial_states = [None] * len(programs)
        return [
            self.simulate(program, state, max_instructions)
            for program, state in zip(programs, initial_states)
        ]

    def _uarch_state(self) -> Dict[str, Hashable]:
        """Attacker-visible microarchitectural residue after a run.

        Subclasses with stateful attacker-observable components (e.g.
        a data cache) publish them here.
        """
        return {}

    def _timing(self, records: List[ExecRecord], program: Program):
        """Map the functional trace to (retire cycles, total cycles).

        Subclasses implement the processor-specific timing model here.
        Retire cycles must be non-decreasing (in-order commit; a
        multi-wide commit port may retire several instructions in the
        same cycle).
        """
        raise NotImplementedError
