"""CVA6-like core model: a 6-stage in-order RV32IM pipeline.

The timing model captures the leakage-relevant behaviour of the
OpenHW CVA6 (Ariane) core as characterized in the paper (Table II):

- **Deep front end with branch prediction.**  Fetch-to-issue takes
  ``frontend_depth`` cycles; a bimodal BHT + BTB predicts branches at
  fetch, and mispredictions flush the front end when the branch
  resolves, so branch *outcome* shows in the timing.
- **Scoreboard with distance-dependent forwarding.**  An instruction
  issues once its operands are ready; results forward from the end of
  execute.  A consumer of a multi-cycle result therefore stalls by an
  amount that depends on its distance to the producer — data- and
  control-dependency leakage at distances up to the pipeline depth
  (``n`` up to 4 in the synthesized contract, matching §V-C).
- **Early-exit serial divider** shared by all four division ops (so
  ``DIV`` vs ``DIVU`` differ on negative operands: instruction
  leakage within the division category).
- **Zero-skip multiplier.**  Either operand being zero takes the fast
  path (register leakage on multiplications).
- **Fixed-latency memory interface.**  The analyzed CVA6 configuration
  exposes nothing about an individual access — no address, data, or
  alignment leakage (Table II: ``ML``/``AL`` all empty).
- **Buffered stores.**  Stores retire through the store buffer without
  waiting for operand forwarding, so they exhibit no dependency
  leakage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.isa.instructions import Opcode
from repro.isa.executor import ExecRecord
from repro.uarch.components.branch_predictor import BimodalPredictor
from repro.uarch.components.divider import EarlyExitDivider
from repro.uarch.components.memory_interface import FixedLatencyMemoryPort
from repro.uarch.components.multiplier import ZeroSkipMultiplier
from repro.uarch.components.shifter import SerialShifter
from repro.uarch.core import Core

_SHIFT_IMMEDIATE = (Opcode.SLLI, Opcode.SRLI, Opcode.SRAI)
_SHIFT_REGISTER = (Opcode.SLL, Opcode.SRL, Opcode.SRA)
_MULTIPLY = (Opcode.MUL, Opcode.MULH, Opcode.MULHSU, Opcode.MULHU)
_DIVIDE = (Opcode.DIV, Opcode.DIVU, Opcode.REM, Opcode.REMU)
_LOADS = (Opcode.LB, Opcode.LH, Opcode.LW, Opcode.LBU, Opcode.LHU)
_STORES = (Opcode.SB, Opcode.SH, Opcode.SW)
_BRANCHES = (
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU, Opcode.BGEU,
)

#: Execution-unit identifiers for structural hazards.
_UNIT_ALU = "alu"
_UNIT_MUL = "mul"
_UNIT_DIV = "div"
_UNIT_LSU = "lsu"


@dataclass
class CVA6Config:
    """Tunable timing parameters of the CVA6-like model."""

    #: Fetch-to-issue depth (PCGen/IF/ID/Issue).
    frontend_depth: int = 3
    #: Branch-predictor table size.
    predictor_entries: int = 64
    #: Extra cycles after a decode-time jump redirect (JAL).
    decode_redirect_penalty: int = 1
    #: Load latency through the (idealized) data cache.
    load_cycles: int = 2
    #: Store-buffer accept latency.
    store_cycles: int = 1
    #: Normal / zero-operand multiplier latencies.
    mul_cycles: int = 3
    mul_zero_cycles: int = 1
    #: Serial shifter step width in bits (coarser than Ibex's).
    shifter_step: int = 16
    #: Instructions the commit port retires per cycle.  CVA6 commits up
    #: to two instructions per cycle; this is what makes operand-wait
    #: stalls visible to a retirement-timing attacker (a stalled
    #: consumer misses its commit slot next to the producer).
    commit_width: int = 2

    shifter: SerialShifter = field(init=False)
    multiplier: ZeroSkipMultiplier = field(init=False)
    divider: EarlyExitDivider = field(init=False)
    memory_port: FixedLatencyMemoryPort = field(init=False)

    def __post_init__(self) -> None:
        self.shifter = SerialShifter(step=self.shifter_step)
        self.multiplier = ZeroSkipMultiplier(
            cycles=self.mul_cycles, zero_cycles=self.mul_zero_cycles
        )
        self.divider = EarlyExitDivider(base_cycles=2)
        self.memory_port = FixedLatencyMemoryPort(
            load_cycles=self.load_cycles, store_cycles=self.store_cycles
        )


class CVA6Core(Core):
    """Timeline-based timing model of the 6-stage CVA6-like pipeline."""

    name = "cva6"

    def __init__(self, config: CVA6Config = None, dependency_window: int = 4):
        super().__init__(dependency_window=dependency_window)
        self.config = config if config is not None else CVA6Config()
        self._predictor = BimodalPredictor(entries=self.config.predictor_entries)

    def reset(self) -> None:
        self._predictor.reset()

    def _timing(self, records: List[ExecRecord], program) -> Tuple[List[int], int]:
        config = self.config
        frontend = config.frontend_depth
        ready_cycle: Dict[int, int] = {}
        unit_free: Dict[str, int] = {}
        retire_cycles: List[int] = []
        next_fetch = 0
        prev_issue = -1
        commit_cycle = 0
        commit_slots_used = self.config.commit_width  # cycle 0 unusable

        for record in records:
            fetch = next_fetch
            next_fetch = fetch + 1

            issue = max(fetch + frontend, prev_issue + 1)
            if record.opcode not in _STORES:
                issue = max(issue, self._operands_ready(record, ready_cycle))
            unit = self._unit(record.opcode)
            issue = max(issue, unit_free.get(unit, 0))
            prev_issue = issue

            latency = self._exec_latency(record)
            done = issue + latency
            unit_free[unit] = done

            written = record.instruction.written_register
            if written is not None:
                ready_cycle[written] = done

            next_fetch = self._control_flow(record, fetch, done, next_fetch)

            commit = max(done + 1, commit_cycle)
            if commit == commit_cycle and commit_slots_used >= self.config.commit_width:
                commit += 1
            if commit > commit_cycle:
                commit_cycle = commit
                commit_slots_used = 0
            commit_slots_used += 1
            retire_cycles.append(commit)

        return retire_cycles, commit_cycle + 1

    def _operands_ready(self, record: ExecRecord, ready_cycle: Dict[int, int]) -> int:
        instruction = record.instruction
        info = instruction.info
        ready = 0
        if info.has_rs1 and instruction.rs1 != 0:
            ready = ready_cycle.get(instruction.rs1, 0)
        if info.has_rs2 and instruction.rs2 != 0:
            ready = max(ready, ready_cycle.get(instruction.rs2, 0))
        return ready

    @staticmethod
    def _unit(opcode: Opcode) -> str:
        if opcode in _MULTIPLY:
            return _UNIT_MUL
        if opcode in _DIVIDE:
            return _UNIT_DIV
        if opcode in _LOADS or opcode in _STORES:
            return _UNIT_LSU
        return _UNIT_ALU

    def _exec_latency(self, record: ExecRecord) -> int:
        opcode = record.opcode
        config = self.config
        if opcode in _SHIFT_IMMEDIATE:
            return config.shifter.latency(record.instruction.imm)
        if opcode in _SHIFT_REGISTER:
            return config.shifter.latency(record.rs2_value)
        if opcode in _MULTIPLY:
            return config.multiplier.latency(opcode, record.rs1_value, record.rs2_value)
        if opcode in _DIVIDE:
            return config.divider.latency(opcode, record.rs1_value, record.rs2_value)
        if opcode in _LOADS:
            width = record.instruction.memory_width
            return config.memory_port.load_latency(record.mem_read_addr, width)
        if opcode in _STORES:
            width = record.instruction.memory_width
            return config.memory_port.store_latency(record.mem_write_addr, width)
        return 1

    def _control_flow(
        self, record: ExecRecord, fetch: int, done: int, next_fetch: int
    ) -> int:
        """Apply redirects; returns the cycle of the next fetch."""
        opcode = record.opcode
        if opcode in _BRANCHES:
            prediction = self._predictor.predict(record.pc)
            taken = bool(record.branch_taken)
            mispredicted = prediction.taken != taken or (
                prediction.taken and prediction.target != record.next_pc
            )
            self._predictor.update(record.pc, taken, record.next_pc)
            if mispredicted:
                return done + 1
            return next_fetch
        if opcode is Opcode.JAL:
            # Target is computable at decode: short, constant redirect.
            return fetch + 1 + self.config.decode_redirect_penalty
        if opcode is Opcode.JALR:
            prediction = self._predictor.predict(record.pc)
            if prediction.taken and prediction.target == record.next_pc:
                self._predictor.update(record.pc, True, record.next_pc)
                return next_fetch
            self._predictor.update(record.pc, True, record.next_pc)
            return done + 1
        return next_fetch
