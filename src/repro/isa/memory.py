"""Sparse byte-addressable memory for the 32-bit address space.

Backed by a dictionary of aligned 32-bit words; unwritten locations read
as zero.  This mirrors the paper's experimental setup in which both
programs of a test case start from the same (fixed) memory image.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

_MASK32 = 0xFFFFFFFF


class SparseMemory:
    """Little-endian sparse memory with word-granular backing store."""

    __slots__ = ("_words",)

    def __init__(self, image: Dict[int, int] = None):
        self._words: Dict[int, int] = {}
        if image:
            for address, value in image.items():
                self.store_word(address, value)

    def copy(self) -> "SparseMemory":
        clone = SparseMemory()
        clone._words = dict(self._words)
        return clone

    def load_byte(self, address: int) -> int:
        address &= _MASK32
        word = self._words.get(address & ~0x3, 0)
        return (word >> ((address & 0x3) * 8)) & 0xFF

    def store_byte(self, address: int, value: int) -> None:
        address &= _MASK32
        base = address & ~0x3
        shift = (address & 0x3) * 8
        word = self._words.get(base, 0)
        self._words[base] = (word & ~(0xFF << shift)) | ((value & 0xFF) << shift)

    def load_halfword(self, address: int) -> int:
        address &= _MASK32
        if address & 0x1 == 0 and address & 0x2 in (0, 2):
            base = address & ~0x3
            shift = (address & 0x3) * 8
            if shift <= 16:
                return (self._words.get(base, 0) >> shift) & 0xFFFF
        return self.load_byte(address) | (self.load_byte(address + 1) << 8)

    def store_halfword(self, address: int, value: int) -> None:
        self.store_byte(address, value & 0xFF)
        self.store_byte(address + 1, (value >> 8) & 0xFF)

    def load_word(self, address: int) -> int:
        address &= _MASK32
        if address & 0x3 == 0:
            return self._words.get(address, 0)
        return (
            self.load_byte(address)
            | (self.load_byte(address + 1) << 8)
            | (self.load_byte(address + 2) << 16)
            | (self.load_byte(address + 3) << 24)
        )

    def store_word(self, address: int, value: int) -> None:
        address &= _MASK32
        if address & 0x3 == 0:
            self._words[address] = value & _MASK32
            return
        for offset in range(4):
            self.store_byte(address + offset, (value >> (offset * 8)) & 0xFF)

    def load(self, address: int, width: int) -> int:
        """Load ``width`` bytes (1, 2, or 4) as an unsigned integer."""
        if width == 4:
            return self.load_word(address)
        if width == 2:
            return self.load_halfword(address)
        if width == 1:
            return self.load_byte(address)
        raise ValueError("unsupported access width: %r" % (width,))

    def store(self, address: int, value: int, width: int) -> None:
        """Store ``width`` bytes (1, 2, or 4) of ``value``."""
        if width == 4:
            self.store_word(address, value)
        elif width == 2:
            self.store_halfword(address, value)
        elif width == 1:
            self.store_byte(address, value)
        else:
            raise ValueError("unsupported access width: %r" % (width,))

    def items(self) -> Iterable[Tuple[int, int]]:
        """Iterate over (aligned address, word value) pairs that were written."""
        return self._words.items()

    def __len__(self) -> int:
        return len(self._words)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseMemory):
            return NotImplemented
        mine = {a: w for a, w in self._words.items() if w != 0}
        theirs = {a: w for a, w in other._words.items() if w != 0}
        return mine == theirs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SparseMemory(%d words)" % len(self._words)
