"""A small two-pass assembler for RV32IM test programs.

Supports the canonical operand syntaxes::

    add  rd, rs1, rs2
    addi rd, rs1, imm
    lw   rd, imm(rs1)
    sw   rs2, imm(rs1)
    beq  rs1, rs2, offset_or_label
    jal  rd, offset_or_label
    jalr rd, rs1, imm        (or: jalr rd, imm(rs1))
    lui  rd, imm
    label:

plus the pseudo-instructions ``nop``, ``mv``, ``li`` (12-bit range),
``j``, ``ret``, and ``not``.  Comments start with ``#`` or ``;``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction, InstructionFormat, Opcode, OPCODE_INFO
from repro.isa.program import DEFAULT_BASE_ADDRESS, Program
from repro.isa.registers import parse_register

_LABEL_RE = re.compile(r"^([A-Za-z_.][\w.]*)\s*:\s*(.*)$")
_MEM_OPERAND_RE = re.compile(r"^(-?\w+)\s*\(\s*(\w+)\s*\)$")


class AssemblerError(ValueError):
    """Raised on any syntax or range error, with the line number."""

    def __init__(self, message: str, line_number: Optional[int] = None):
        if line_number is not None:
            message = "line %d: %s" % (line_number, message)
        super().__init__(message)
        self.line_number = line_number


def _parse_int(text: str, line_number: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError("invalid integer literal: %r" % text, line_number)


def _strip_comment(line: str) -> str:
    for marker in ("#", ";", "//"):
        position = line.find(marker)
        if position >= 0:
            line = line[:position]
    return line.strip()


def assemble(source: str, base_address: int = DEFAULT_BASE_ADDRESS) -> Program:
    """Assemble ``source`` text into a :class:`Program`."""
    statements = _collect_statements(source)
    labels = _assign_labels(statements, base_address)
    instructions: List[Instruction] = []
    for address_index, (line_number, mnemonic, operands) in enumerate(
        statement for statement in statements if statement is not None
    ):
        address = base_address + 4 * address_index
        instructions.append(
            _assemble_statement(mnemonic, operands, address, labels, line_number)
        )
    return Program(instructions, base_address)


def assemble_program(lines: List[str], base_address: int = DEFAULT_BASE_ADDRESS) -> Program:
    """Assemble a list of statement strings (one instruction each)."""
    return assemble("\n".join(lines), base_address)


def _collect_statements(source: str):
    """Yield parsed (line_number, mnemonic, operands) or label markers.

    Returns a list where instruction statements are tuples and label
    definitions are folded into a side table by :func:`_assign_labels`;
    labels are represented by ``("label", name)`` placeholders.
    """
    statements = []
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw_line)
        while line:
            match = _LABEL_RE.match(line)
            if match:
                statements.append(("label", match.group(1), line_number))
                line = match.group(2).strip()
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operand_text = parts[1] if len(parts) > 1 else ""
            operands = [
                operand.strip() for operand in operand_text.split(",") if operand.strip()
            ]
            statements.append((line_number, mnemonic, operands))
            line = ""
    # Normalize: labels become None placeholders after address assignment.
    return statements


def _assign_labels(statements, base_address: int) -> Dict[str, int]:
    labels: Dict[str, int] = {}
    address = base_address
    for position, statement in enumerate(statements):
        if statement[0] == "label":
            _tag, name, line_number = statement
            if name in labels:
                raise AssemblerError("duplicate label: %r" % name, line_number)
            labels[name] = address
            statements[position] = None
        else:
            address += 4
    statements[:] = [statement for statement in statements if statement is not None]
    return labels


def _resolve_target(
    text: str, address: int, labels: Dict[str, int], line_number: int
) -> int:
    """Resolve a branch/jump operand to a pc-relative offset."""
    if text in labels:
        return labels[text] - address
    return _parse_int(text, line_number)


_PSEUDO_EXPANSIONS = {
    "nop": ("addi", ["x0", "x0", "0"]),
    "ret": ("jalr", ["x0", "ra", "0"]),
}


def _assemble_statement(
    mnemonic: str,
    operands: List[str],
    address: int,
    labels: Dict[str, int],
    line_number: int,
) -> Instruction:
    if mnemonic in _PSEUDO_EXPANSIONS:
        if operands:
            raise AssemblerError("%s takes no operands" % mnemonic, line_number)
        mnemonic, operands = _PSEUDO_EXPANSIONS[mnemonic]
    elif mnemonic == "mv":
        _expect_operands(mnemonic, operands, 2, line_number)
        mnemonic, operands = "addi", [operands[0], operands[1], "0"]
    elif mnemonic == "li":
        _expect_operands(mnemonic, operands, 2, line_number)
        value = _parse_int(operands[1], line_number)
        if not -2048 <= value <= 2047:
            raise AssemblerError(
                "li immediate out of 12-bit range: %d" % value, line_number
            )
        mnemonic, operands = "addi", [operands[0], "x0", str(value)]
    elif mnemonic == "j":
        _expect_operands(mnemonic, operands, 1, line_number)
        mnemonic, operands = "jal", ["x0", operands[0]]
    elif mnemonic == "not":
        _expect_operands(mnemonic, operands, 2, line_number)
        mnemonic, operands = "xori", [operands[0], operands[1], "-1"]

    try:
        opcode = Opcode(mnemonic)
    except ValueError:
        raise AssemblerError("unknown mnemonic: %r" % mnemonic, line_number)
    info = OPCODE_INFO[opcode]

    try:
        return _build_instruction(opcode, info, operands, address, labels, line_number)
    except ValueError as error:
        if isinstance(error, AssemblerError):
            raise
        raise AssemblerError(str(error), line_number)


def _expect_operands(mnemonic: str, operands: List[str], count: int, line_number: int):
    if len(operands) != count:
        raise AssemblerError(
            "%s expects %d operands, got %d" % (mnemonic, count, len(operands)),
            line_number,
        )


def _parse_mem_operand(text: str, line_number: int) -> Tuple[int, int]:
    match = _MEM_OPERAND_RE.match(text)
    if not match:
        raise AssemblerError("expected imm(reg) operand, got %r" % text, line_number)
    return _parse_int(match.group(1), line_number), parse_register(match.group(2))


def _build_instruction(
    opcode: Opcode,
    info,
    operands: List[str],
    address: int,
    labels: Dict[str, int],
    line_number: int,
) -> Instruction:
    name = opcode.value
    fmt = info.fmt

    if opcode in (Opcode.FENCE, Opcode.ECALL, Opcode.EBREAK):
        if operands:
            raise AssemblerError("%s takes no operands" % name, line_number)
        return Instruction(opcode)

    if fmt is InstructionFormat.R:
        _expect_operands(name, operands, 3, line_number)
        return Instruction(
            opcode,
            rd=parse_register(operands[0]),
            rs1=parse_register(operands[1]),
            rs2=parse_register(operands[2]),
        )
    if fmt is InstructionFormat.U:
        _expect_operands(name, operands, 2, line_number)
        return Instruction(
            opcode,
            rd=parse_register(operands[0]),
            imm=_parse_int(operands[1], line_number),
        )
    if fmt is InstructionFormat.J:
        _expect_operands(name, operands, 2, line_number)
        return Instruction(
            opcode,
            rd=parse_register(operands[0]),
            imm=_resolve_target(operands[1], address, labels, line_number),
        )
    if fmt is InstructionFormat.B:
        _expect_operands(name, operands, 3, line_number)
        return Instruction(
            opcode,
            rs1=parse_register(operands[0]),
            rs2=parse_register(operands[1]),
            imm=_resolve_target(operands[2], address, labels, line_number),
        )
    if fmt is InstructionFormat.S:
        _expect_operands(name, operands, 2, line_number)
        imm, rs1 = _parse_mem_operand(operands[1], line_number)
        return Instruction(
            opcode, rs1=rs1, rs2=parse_register(operands[0]), imm=imm
        )
    # I-format: loads use imm(rs1); JALR accepts both syntaxes; ALU uses 3 operands.
    if opcode in (Opcode.LB, Opcode.LH, Opcode.LW, Opcode.LBU, Opcode.LHU):
        _expect_operands(name, operands, 2, line_number)
        imm, rs1 = _parse_mem_operand(operands[1], line_number)
        return Instruction(opcode, rd=parse_register(operands[0]), rs1=rs1, imm=imm)
    if opcode is Opcode.JALR and len(operands) == 2:
        imm, rs1 = _parse_mem_operand(operands[1], line_number)
        return Instruction(opcode, rd=parse_register(operands[0]), rs1=rs1, imm=imm)
    _expect_operands(name, operands, 3, line_number)
    return Instruction(
        opcode,
        rd=parse_register(operands[0]),
        rs1=parse_register(operands[1]),
        imm=_parse_int(operands[2], line_number),
    )
