"""RISC-V integer register file names and helpers.

RV32I defines 32 integer registers ``x0`` .. ``x31`` where ``x0`` is
hard-wired to zero.  The ABI assigns mnemonic names (``zero``, ``ra``,
``sp``, ...) which the assembler and disassembler accept and produce.
"""

from __future__ import annotations

REGISTER_COUNT = 32

#: ABI register names indexed by register number.
ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

_NAME_TO_INDEX = {name: index for index, name in enumerate(ABI_NAMES)}
_NAME_TO_INDEX.update({"x%d" % index: index for index in range(REGISTER_COUNT)})
# ``fp`` is an alias for ``s0``/``x8``.
_NAME_TO_INDEX["fp"] = 8


def register_name(index: int, abi: bool = True) -> str:
    """Return the canonical name of register ``index``.

    ``abi=True`` yields the ABI name (``a0``), otherwise the numeric
    name (``x10``).
    """
    if not 0 <= index < REGISTER_COUNT:
        raise ValueError("register index out of range: %r" % (index,))
    return ABI_NAMES[index] if abi else "x%d" % index


def parse_register(name: str) -> int:
    """Parse a register name (ABI or numeric) into its index."""
    index = _NAME_TO_INDEX.get(name.strip().lower())
    if index is None:
        raise ValueError("unknown register name: %r" % (name,))
    return index
