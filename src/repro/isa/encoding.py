"""Binary encoding and decoding of RV32IM instructions.

Implements the standard 32-bit instruction formats (R/I/S/B/U/J) as
specified in the RISC-V unprivileged ISA manual.  ``encode_instruction``
and ``decode_instruction`` are exact inverses on the supported subset,
which the property-based tests verify by round-tripping the entire
instruction space.
"""

from __future__ import annotations

from repro.isa.instructions import (
    Instruction,
    InstructionFormat,
    Opcode,
    OPCODE_INFO,
    SHIFT_IMMEDIATE_OPCODES,
)


class EncodingError(ValueError):
    """Raised when a word cannot be decoded as a supported instruction."""


_MAJOR_LUI = 0b0110111
_MAJOR_AUIPC = 0b0010111
_MAJOR_JAL = 0b1101111
_MAJOR_JALR = 0b1100111
_MAJOR_BRANCH = 0b1100011
_MAJOR_LOAD = 0b0000011
_MAJOR_STORE = 0b0100011
_MAJOR_OP_IMM = 0b0010011
_MAJOR_OP = 0b0110011
_MAJOR_MISC_MEM = 0b0001111
_MAJOR_SYSTEM = 0b1110011

#: opcode -> (major opcode, funct3, funct7); ``None`` where unused.
_ENCODING_FIELDS = {
    Opcode.LUI: (_MAJOR_LUI, None, None),
    Opcode.AUIPC: (_MAJOR_AUIPC, None, None),
    Opcode.JAL: (_MAJOR_JAL, None, None),
    Opcode.JALR: (_MAJOR_JALR, 0b000, None),
    Opcode.BEQ: (_MAJOR_BRANCH, 0b000, None),
    Opcode.BNE: (_MAJOR_BRANCH, 0b001, None),
    Opcode.BLT: (_MAJOR_BRANCH, 0b100, None),
    Opcode.BGE: (_MAJOR_BRANCH, 0b101, None),
    Opcode.BLTU: (_MAJOR_BRANCH, 0b110, None),
    Opcode.BGEU: (_MAJOR_BRANCH, 0b111, None),
    Opcode.LB: (_MAJOR_LOAD, 0b000, None),
    Opcode.LH: (_MAJOR_LOAD, 0b001, None),
    Opcode.LW: (_MAJOR_LOAD, 0b010, None),
    Opcode.LBU: (_MAJOR_LOAD, 0b100, None),
    Opcode.LHU: (_MAJOR_LOAD, 0b101, None),
    Opcode.SB: (_MAJOR_STORE, 0b000, None),
    Opcode.SH: (_MAJOR_STORE, 0b001, None),
    Opcode.SW: (_MAJOR_STORE, 0b010, None),
    Opcode.ADDI: (_MAJOR_OP_IMM, 0b000, None),
    Opcode.SLTI: (_MAJOR_OP_IMM, 0b010, None),
    Opcode.SLTIU: (_MAJOR_OP_IMM, 0b011, None),
    Opcode.XORI: (_MAJOR_OP_IMM, 0b100, None),
    Opcode.ORI: (_MAJOR_OP_IMM, 0b110, None),
    Opcode.ANDI: (_MAJOR_OP_IMM, 0b111, None),
    Opcode.SLLI: (_MAJOR_OP_IMM, 0b001, 0b0000000),
    Opcode.SRLI: (_MAJOR_OP_IMM, 0b101, 0b0000000),
    Opcode.SRAI: (_MAJOR_OP_IMM, 0b101, 0b0100000),
    Opcode.ADD: (_MAJOR_OP, 0b000, 0b0000000),
    Opcode.SUB: (_MAJOR_OP, 0b000, 0b0100000),
    Opcode.SLL: (_MAJOR_OP, 0b001, 0b0000000),
    Opcode.SLT: (_MAJOR_OP, 0b010, 0b0000000),
    Opcode.SLTU: (_MAJOR_OP, 0b011, 0b0000000),
    Opcode.XOR: (_MAJOR_OP, 0b100, 0b0000000),
    Opcode.SRL: (_MAJOR_OP, 0b101, 0b0000000),
    Opcode.SRA: (_MAJOR_OP, 0b101, 0b0100000),
    Opcode.OR: (_MAJOR_OP, 0b110, 0b0000000),
    Opcode.AND: (_MAJOR_OP, 0b111, 0b0000000),
    Opcode.MUL: (_MAJOR_OP, 0b000, 0b0000001),
    Opcode.MULH: (_MAJOR_OP, 0b001, 0b0000001),
    Opcode.MULHSU: (_MAJOR_OP, 0b010, 0b0000001),
    Opcode.MULHU: (_MAJOR_OP, 0b011, 0b0000001),
    Opcode.DIV: (_MAJOR_OP, 0b100, 0b0000001),
    Opcode.DIVU: (_MAJOR_OP, 0b101, 0b0000001),
    Opcode.REM: (_MAJOR_OP, 0b110, 0b0000001),
    Opcode.REMU: (_MAJOR_OP, 0b111, 0b0000001),
    Opcode.FENCE: (_MAJOR_MISC_MEM, 0b000, None),
    Opcode.ECALL: (_MAJOR_SYSTEM, 0b000, None),
    Opcode.EBREAK: (_MAJOR_SYSTEM, 0b000, None),
}

_DECODE_R = {
    (funct3, funct7): opcode
    for opcode, (major, funct3, funct7) in _ENCODING_FIELDS.items()
    if major == _MAJOR_OP
}
_DECODE_BRANCH = {
    funct3: opcode
    for opcode, (major, funct3, _f7) in _ENCODING_FIELDS.items()
    if major == _MAJOR_BRANCH
}
_DECODE_LOAD = {
    funct3: opcode
    for opcode, (major, funct3, _f7) in _ENCODING_FIELDS.items()
    if major == _MAJOR_LOAD
}
_DECODE_STORE = {
    funct3: opcode
    for opcode, (major, funct3, _f7) in _ENCODING_FIELDS.items()
    if major == _MAJOR_STORE
}
_DECODE_OP_IMM = {
    funct3: opcode
    for opcode, (major, funct3, funct7) in _ENCODING_FIELDS.items()
    if major == _MAJOR_OP_IMM and funct7 is None
}


def _to_unsigned(value: int, bits: int) -> int:
    return value & ((1 << bits) - 1)


def _sign_extend(value: int, bits: int) -> int:
    sign_bit = 1 << (bits - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


def signed32(value: int) -> int:
    """The signed (two's-complement) reading of a 32-bit register value.

    The single sign-extension helper shared by the scalar interpreter
    (:mod:`repro.isa.executor`) and the batched columnar engine
    (:mod:`repro.batchsim`): both paths must agree bit-for-bit on
    signed comparisons, shifts, and division, so the conversion lives
    here exactly once.
    """
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def encode_instruction(instruction: Instruction) -> int:
    """Encode ``instruction`` into its 32-bit machine word."""
    opcode = instruction.opcode
    major, funct3, funct7 = _ENCODING_FIELDS[opcode]
    info = OPCODE_INFO[opcode]
    rd, rs1, rs2 = instruction.rd, instruction.rs1, instruction.rs2
    imm = instruction.imm

    if opcode is Opcode.ECALL:
        return (0 << 20) | (0b000 << 12) | _MAJOR_SYSTEM
    if opcode is Opcode.EBREAK:
        return (1 << 20) | (0b000 << 12) | _MAJOR_SYSTEM
    if opcode is Opcode.FENCE:
        # fence iorw, iorw
        return (0x0FF << 20) | (0b000 << 12) | _MAJOR_MISC_MEM

    fmt = info.fmt
    if fmt is InstructionFormat.R:
        return (
            (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12)
            | (rd << 7) | major
        )
    if fmt is InstructionFormat.I:
        if opcode in SHIFT_IMMEDIATE_OPCODES:
            imm12 = (funct7 << 5) | (imm & 0x1F)
        else:
            imm12 = _to_unsigned(imm, 12)
        return (imm12 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | major
    if fmt is InstructionFormat.S:
        imm12 = _to_unsigned(imm, 12)
        return (
            ((imm12 >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12)
            | ((imm12 & 0x1F) << 7) | major
        )
    if fmt is InstructionFormat.B:
        imm13 = _to_unsigned(imm, 13)
        return (
            (((imm13 >> 12) & 0x1) << 31)
            | (((imm13 >> 5) & 0x3F) << 25)
            | (rs2 << 20)
            | (rs1 << 15)
            | (funct3 << 12)
            | (((imm13 >> 1) & 0xF) << 8)
            | (((imm13 >> 11) & 0x1) << 7)
            | major
        )
    if fmt is InstructionFormat.U:
        return (_to_unsigned(imm, 20) << 12) | (rd << 7) | major
    if fmt is InstructionFormat.J:
        imm21 = _to_unsigned(imm, 21)
        return (
            (((imm21 >> 20) & 0x1) << 31)
            | (((imm21 >> 1) & 0x3FF) << 21)
            | (((imm21 >> 11) & 0x1) << 20)
            | (((imm21 >> 12) & 0xFF) << 12)
            | (rd << 7)
            | major
        )
    raise AssertionError("unreachable format: %r" % (fmt,))  # pragma: no cover


def decode_instruction(word: int) -> Instruction:
    """Decode a 32-bit machine word into an :class:`Instruction`."""
    if not 0 <= word <= 0xFFFFFFFF:
        raise EncodingError("word out of range: %r" % (word,))
    major = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if major == _MAJOR_LUI:
        return Instruction(Opcode.LUI, rd=rd, imm=(word >> 12) & 0xFFFFF)
    if major == _MAJOR_AUIPC:
        return Instruction(Opcode.AUIPC, rd=rd, imm=(word >> 12) & 0xFFFFF)
    if major == _MAJOR_JAL:
        imm = (
            (((word >> 31) & 0x1) << 20)
            | (((word >> 21) & 0x3FF) << 1)
            | (((word >> 20) & 0x1) << 11)
            | (((word >> 12) & 0xFF) << 12)
        )
        return Instruction(Opcode.JAL, rd=rd, imm=_sign_extend(imm, 21))
    if major == _MAJOR_JALR:
        if funct3 != 0:
            raise EncodingError("bad JALR funct3: %d" % funct3)
        return Instruction(
            Opcode.JALR, rd=rd, rs1=rs1, imm=_sign_extend(word >> 20, 12)
        )
    if major == _MAJOR_BRANCH:
        opcode = _DECODE_BRANCH.get(funct3)
        if opcode is None:
            raise EncodingError("bad branch funct3: %d" % funct3)
        imm = (
            (((word >> 31) & 0x1) << 12)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1)
            | (((word >> 7) & 0x1) << 11)
        )
        return Instruction(opcode, rs1=rs1, rs2=rs2, imm=_sign_extend(imm, 13))
    if major == _MAJOR_LOAD:
        opcode = _DECODE_LOAD.get(funct3)
        if opcode is None:
            raise EncodingError("bad load funct3: %d" % funct3)
        return Instruction(opcode, rd=rd, rs1=rs1, imm=_sign_extend(word >> 20, 12))
    if major == _MAJOR_STORE:
        opcode = _DECODE_STORE.get(funct3)
        if opcode is None:
            raise EncodingError("bad store funct3: %d" % funct3)
        imm = ((word >> 25) << 5) | ((word >> 7) & 0x1F)
        return Instruction(opcode, rs1=rs1, rs2=rs2, imm=_sign_extend(imm, 12))
    if major == _MAJOR_OP_IMM:
        if funct3 == 0b001 or funct3 == 0b101:
            shamt = rs2
            if funct3 == 0b001:
                if funct7 != 0:
                    raise EncodingError("bad SLLI funct7: %d" % funct7)
                return Instruction(Opcode.SLLI, rd=rd, rs1=rs1, imm=shamt)
            if funct7 == 0b0000000:
                return Instruction(Opcode.SRLI, rd=rd, rs1=rs1, imm=shamt)
            if funct7 == 0b0100000:
                return Instruction(Opcode.SRAI, rd=rd, rs1=rs1, imm=shamt)
            raise EncodingError("bad shift funct7: %d" % funct7)
        opcode = _DECODE_OP_IMM.get(funct3)
        if opcode is None:
            raise EncodingError("bad OP-IMM funct3: %d" % funct3)
        return Instruction(opcode, rd=rd, rs1=rs1, imm=_sign_extend(word >> 20, 12))
    if major == _MAJOR_OP:
        opcode = _DECODE_R.get((funct3, funct7))
        if opcode is None:
            raise EncodingError("bad OP funct3/funct7: %d/%d" % (funct3, funct7))
        return Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2)
    if major == _MAJOR_MISC_MEM:
        if funct3 != 0:
            raise EncodingError("bad MISC-MEM funct3: %d" % funct3)
        return Instruction(Opcode.FENCE)
    if major == _MAJOR_SYSTEM:
        imm12 = word >> 20
        if funct3 == 0 and imm12 == 0:
            return Instruction(Opcode.ECALL)
        if funct3 == 0 and imm12 == 1:
            return Instruction(Opcode.EBREAK)
        raise EncodingError("unsupported SYSTEM encoding: 0x%08x" % word)
    raise EncodingError("unsupported major opcode: 0x%02x" % major)
