"""Disassembler producing assembler-compatible text.

``assemble(disassemble_program(p)) == p`` holds for every program, which
the property-based tests exploit for round-trip checking.
"""

from __future__ import annotations

from typing import List

from repro.isa.instructions import Instruction, InstructionFormat, Opcode
from repro.isa.program import Program
from repro.isa.registers import register_name


def disassemble(instruction: Instruction, abi: bool = True) -> str:
    """Render one instruction as text."""
    opcode = instruction.opcode
    info = instruction.info
    name = opcode.value

    def reg(index: int) -> str:
        return register_name(index, abi=abi)

    if opcode in (Opcode.FENCE, Opcode.ECALL, Opcode.EBREAK):
        return name
    fmt = info.fmt
    if fmt is InstructionFormat.R:
        return "%s %s, %s, %s" % (name, reg(instruction.rd), reg(instruction.rs1), reg(instruction.rs2))
    if fmt is InstructionFormat.U:
        return "%s %s, %d" % (name, reg(instruction.rd), instruction.imm)
    if fmt is InstructionFormat.J:
        return "%s %s, %d" % (name, reg(instruction.rd), instruction.imm)
    if fmt is InstructionFormat.B:
        return "%s %s, %s, %d" % (name, reg(instruction.rs1), reg(instruction.rs2), instruction.imm)
    if fmt is InstructionFormat.S:
        return "%s %s, %d(%s)" % (name, reg(instruction.rs2), instruction.imm, reg(instruction.rs1))
    # I-format
    if opcode in (Opcode.LB, Opcode.LH, Opcode.LW, Opcode.LBU, Opcode.LHU):
        return "%s %s, %d(%s)" % (name, reg(instruction.rd), instruction.imm, reg(instruction.rs1))
    return "%s %s, %s, %d" % (name, reg(instruction.rd), reg(instruction.rs1), instruction.imm)


def disassemble_program(program: Program, abi: bool = True) -> List[str]:
    """Render a whole program, one line per instruction."""
    return [disassemble(instruction, abi=abi) for instruction in program]
