"""The RV32C compressed-instruction encoding layer.

The paper analyzes both cores in their RV32IM**C** configurations.
Compressed (16-bit) encodings matter for leakage because they change
instruction-fetch behaviour: a fetch unit that delivers a fixed number
of bytes per cycle supplies two compressed instructions per fetch but
only one uncompressed instruction, so *encoding-dependent* timing
appears — a plausible origin of the pervasive ``IL`` cells in the
paper's contract tables.

This module implements the RV32C subset relevant to RV32IM programs:

``compress``    maps an :class:`~repro.isa.instructions.Instruction`
                to its 16-bit encoding when one exists (else ``None``),
``decompress``  expands a 16-bit word back to the base instruction,
``is_compressible``
                the predicate used by the fetch-timing models.

The mapping follows the RVC spec: C.ADDI, C.LI, C.LUI, C.ADDI16SP,
C.ADDI4SPN, C.SLLI, C.SRLI, C.SRAI, C.ANDI, C.MV, C.ADD, C.SUB,
C.XOR, C.OR, C.AND, C.LW, C.SW, C.LWSP, C.SWSP, C.J, C.JAL, C.JR,
C.JALR, C.BEQZ, C.BNEZ, C.NOP, C.EBREAK.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instructions import Instruction, Opcode


class CompressionError(ValueError):
    """Raised when a 16-bit word is not a valid RV32C instruction."""


def _is_prime_register(index: int) -> bool:
    """RVC's 3-bit register fields address x8..x15 only."""
    return 8 <= index <= 15


def _prime(index: int) -> int:
    return index - 8


def _unprime(field: int) -> int:
    return field + 8


def _fits_signed(value: int, bits: int) -> bool:
    return -(1 << (bits - 1)) <= value < (1 << (bits - 1))


def compress(instruction: Instruction) -> Optional[int]:
    """The 16-bit encoding of ``instruction``, or ``None``.

    Returns the canonical RVC encoding when the instruction matches a
    compressed format's operand constraints.
    """
    opcode = instruction.opcode
    rd, rs1, rs2, imm = (
        instruction.rd, instruction.rs1, instruction.rs2, instruction.imm,
    )

    if opcode is Opcode.ADDI:
        # C.NOP / C.ADDI: rd == rs1 != 0, 6-bit immediate.
        if rd == rs1 and _fits_signed(imm, 6):
            if rd == 0 and imm == 0:
                return _ci(0b01, 0b000, 0, 0)  # C.NOP
            if rd != 0:
                return _ci(0b01, 0b000, rd, imm)
        # C.LI: rs1 == x0, rd != 0, 6-bit immediate.
        if rs1 == 0 and rd != 0 and _fits_signed(imm, 6):
            return _ci(0b01, 0b010, rd, imm)
        # C.ADDI16SP: rd == rs1 == sp, imm multiple of 16 in 10 bits.
        if (
            rd == rs1 == 2
            and imm % 16 == 0
            and imm != 0
            and _fits_signed(imm // 16, 6)
        ):
            return _ci_addi16sp(imm)
        # C.ADDI4SPN: rs1 == sp, rd' in x8..15, zero-extended scaled imm.
        if (
            rs1 == 2
            and _is_prime_register(rd)
            and imm > 0
            and imm % 4 == 0
            and imm < 1024
        ):
            return _ciw_addi4spn(rd, imm)
        return None
    if opcode is Opcode.LUI:
        # C.LUI: rd != 0, 2; imm in [-32, 31] after sign fold, != 0.
        if rd not in (0, 2) and imm != 0:
            folded = imm if imm < 32 else imm - (1 << 20)
            if _fits_signed(folded, 6) and folded != 0:
                return _ci(0b01, 0b011, rd, folded)
        return None
    if opcode is Opcode.SLLI:
        if rd == rs1 != 0 and 0 < imm < 32:
            return _ci(0b10, 0b000, rd, imm, unsigned=True)
        return None
    if opcode in (Opcode.SRLI, Opcode.SRAI):
        if rd == rs1 and _is_prime_register(rd) and 0 < imm < 32:
            funct2 = 0b00 if opcode is Opcode.SRLI else 0b01
            return _cb_shift(funct2, rd, imm)
        return None
    if opcode is Opcode.ANDI:
        if rd == rs1 and _is_prime_register(rd) and _fits_signed(imm, 6):
            return _cb_andi(rd, imm)
        return None
    if opcode is Opcode.ADD:
        # C.MV: rd != 0, rs1 == x0 is NOT C.MV (that is rs2 move):
        # C.MV expands to add rd, x0, rs2.
        if rd != 0 and rs1 == 0 and rs2 != 0:
            return _cr(0b1000, rd, rs2)
        # C.ADD: rd == rs1 != 0, rs2 != 0.
        if rd == rs1 != 0 and rs2 != 0:
            return _cr(0b1001, rd, rs2)
        return None
    if opcode in (Opcode.SUB, Opcode.XOR, Opcode.OR, Opcode.AND):
        if rd == rs1 and _is_prime_register(rd) and _is_prime_register(rs2):
            funct2 = {
                Opcode.SUB: 0b00, Opcode.XOR: 0b01,
                Opcode.OR: 0b10, Opcode.AND: 0b11,
            }[opcode]
            return _ca(funct2, rd, rs2)
        return None
    if opcode is Opcode.LW:
        # C.LWSP: rd != 0, rs1 == sp, scaled 8-bit zero-extended imm.
        if rd != 0 and rs1 == 2 and imm % 4 == 0 and 0 <= imm < 256:
            return _ci_lwsp(rd, imm)
        if (
            _is_prime_register(rd)
            and _is_prime_register(rs1)
            and imm % 4 == 0
            and 0 <= imm < 128
        ):
            return _cl_lw(rd, rs1, imm)
        return None
    if opcode is Opcode.SW:
        if rs1 == 2 and imm % 4 == 0 and 0 <= imm < 256:
            return _css_swsp(rs2, imm)
        if (
            _is_prime_register(rs1)
            and _is_prime_register(rs2)
            and imm % 4 == 0
            and 0 <= imm < 128
        ):
            return _cs_sw(rs2, rs1, imm)
        return None
    if opcode is Opcode.JAL:
        if rd == 0 and _fits_signed(imm, 12):
            return _cj(0b101, imm)
        if rd == 1 and _fits_signed(imm, 12):
            return _cj(0b001, imm)  # C.JAL (RV32 only)
        return None
    if opcode is Opcode.JALR:
        if imm == 0 and rs1 != 0:
            if rd == 0:
                return _cr(0b1000, rs1, 0)  # C.JR
            if rd == 1:
                return _cr(0b1001, rs1, 0)  # C.JALR
        return None
    if opcode in (Opcode.BEQ, Opcode.BNE):
        if rs2 == 0 and _is_prime_register(rs1) and _fits_signed(imm, 9):
            funct3 = 0b110 if opcode is Opcode.BEQ else 0b111
            return _cb_branch(funct3, rs1, imm)
        return None
    if opcode is Opcode.EBREAK:
        return (0b100 << 13) | (1 << 12) | 0b10
    return None


def is_compressible(instruction: Instruction) -> bool:
    """Whether the instruction has a 16-bit encoding."""
    return compress(instruction) is not None


def code_size(instruction: Instruction) -> int:
    """Bytes the instruction occupies in an RV32IMC text section."""
    return 2 if is_compressible(instruction) else 4


# ----------------------------------------------------------------------
# Format packers

def _ci(quadrant: int, funct3: int, rd: int, imm: int, unsigned: bool = False) -> int:
    value = imm & 0x3F
    return (
        (funct3 << 13)
        | (((value >> 5) & 1) << 12)
        | (rd << 7)
        | ((value & 0x1F) << 2)
        | quadrant
    )


def _ci_addi16sp(imm: int) -> int:
    scaled = imm
    return (
        (0b011 << 13)
        | (((scaled >> 9) & 1) << 12)
        | (2 << 7)
        | (((scaled >> 4) & 1) << 6)
        | (((scaled >> 6) & 1) << 5)
        | (((scaled >> 7) & 0x3) << 3)
        | (((scaled >> 5) & 1) << 2)
        | 0b01
    )


def _ciw_addi4spn(rd: int, imm: int) -> int:
    return (
        (0b000 << 13)
        | (((imm >> 4) & 0x3) << 11)
        | (((imm >> 6) & 0xF) << 7)
        | (((imm >> 2) & 1) << 6)
        | (((imm >> 3) & 1) << 5)
        | (_prime(rd) << 2)
        | 0b00
    )


def _cr(funct4: int, rd_rs1: int, rs2: int) -> int:
    return (funct4 << 12) | (rd_rs1 << 7) | (rs2 << 2) | 0b10


def _ca(funct2: int, rd: int, rs2: int) -> int:
    return (
        (0b100011 << 10)
        | (_prime(rd) << 7)
        | (funct2 << 5)
        | (_prime(rs2) << 2)
        | 0b01
    )


def _cb_shift(funct2: int, rd: int, shamt: int) -> int:
    return (
        (0b100 << 13)
        | (((shamt >> 5) & 1) << 12)
        | (funct2 << 10)
        | (_prime(rd) << 7)
        | ((shamt & 0x1F) << 2)
        | 0b01
    )


def _cb_andi(rd: int, imm: int) -> int:
    value = imm & 0x3F
    return (
        (0b100 << 13)
        | (((value >> 5) & 1) << 12)
        | (0b10 << 10)
        | (_prime(rd) << 7)
        | ((value & 0x1F) << 2)
        | 0b01
    )


def _cb_branch(funct3: int, rs1: int, offset: int) -> int:
    value = offset & 0x1FF
    return (
        (funct3 << 13)
        | (((value >> 8) & 1) << 12)
        | (((value >> 3) & 0x3) << 10)
        | (_prime(rs1) << 7)
        | (((value >> 6) & 0x3) << 5)
        | (((value >> 1) & 0x3) << 3)
        | (((value >> 5) & 1) << 2)
        | 0b01
    )


def _cj(funct3: int, offset: int) -> int:
    value = offset & 0xFFF
    return (
        (funct3 << 13)
        | (((value >> 11) & 1) << 12)
        | (((value >> 4) & 1) << 11)
        | (((value >> 8) & 0x3) << 9)
        | (((value >> 10) & 1) << 8)
        | (((value >> 6) & 1) << 7)
        | (((value >> 7) & 1) << 6)
        | (((value >> 1) & 0x7) << 3)
        | (((value >> 5) & 1) << 2)
        | 0b01
    )


def _cl_lw(rd: int, rs1: int, imm: int) -> int:
    return (
        (0b010 << 13)
        | (((imm >> 3) & 0x7) << 10)
        | (_prime(rs1) << 7)
        | (((imm >> 2) & 1) << 6)
        | (((imm >> 6) & 1) << 5)
        | (_prime(rd) << 2)
        | 0b00
    )


def _cs_sw(rs2: int, rs1: int, imm: int) -> int:
    return (
        (0b110 << 13)
        | (((imm >> 3) & 0x7) << 10)
        | (_prime(rs1) << 7)
        | (((imm >> 2) & 1) << 6)
        | (((imm >> 6) & 1) << 5)
        | (_prime(rs2) << 2)
        | 0b00
    )


def _ci_lwsp(rd: int, imm: int) -> int:
    return (
        (0b010 << 13)
        | (((imm >> 5) & 1) << 12)
        | (rd << 7)
        | (((imm >> 2) & 0x7) << 4)
        | (((imm >> 6) & 0x3) << 2)
        | 0b10
    )


def _css_swsp(rs2: int, imm: int) -> int:
    return (
        (0b110 << 13)
        | (((imm >> 2) & 0xF) << 9)
        | (((imm >> 6) & 0x3) << 7)
        | (rs2 << 2)
        | 0b10
    )


# ----------------------------------------------------------------------
# Decompression

def _sign_extend(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def decompress(word: int) -> Instruction:
    """Expand a 16-bit RVC word into its base RV32IM instruction."""
    if not 0 <= word <= 0xFFFF:
        raise CompressionError("word out of 16-bit range: %r" % (word,))
    quadrant = word & 0x3
    if quadrant == 0b11:
        raise CompressionError("not a compressed instruction: 0x%04x" % word)
    funct3 = (word >> 13) & 0x7
    if quadrant == 0b00:
        return _decompress_q0(word, funct3)
    if quadrant == 0b01:
        return _decompress_q1(word, funct3)
    return _decompress_q2(word, funct3)


def _decompress_q0(word: int, funct3: int) -> Instruction:
    rd_prime = _unprime((word >> 2) & 0x7)
    rs1_prime = _unprime((word >> 7) & 0x7)
    if funct3 == 0b000:
        imm = (
            (((word >> 11) & 0x3) << 4)
            | (((word >> 7) & 0xF) << 6)
            | (((word >> 6) & 1) << 2)
            | (((word >> 5) & 1) << 3)
        )
        if imm == 0:
            raise CompressionError("reserved CIW encoding")
        return Instruction(Opcode.ADDI, rd=rd_prime, rs1=2, imm=imm)
    if funct3 == 0b010:
        imm = (
            (((word >> 10) & 0x7) << 3)
            | (((word >> 6) & 1) << 2)
            | (((word >> 5) & 1) << 6)
        )
        return Instruction(Opcode.LW, rd=rd_prime, rs1=rs1_prime, imm=imm)
    if funct3 == 0b110:
        imm = (
            (((word >> 10) & 0x7) << 3)
            | (((word >> 6) & 1) << 2)
            | (((word >> 5) & 1) << 6)
        )
        return Instruction(Opcode.SW, rs1=rs1_prime, rs2=rd_prime, imm=imm)
    raise CompressionError("unsupported quadrant-0 funct3: %d" % funct3)


def _decompress_q1(word: int, funct3: int) -> Instruction:
    rd = (word >> 7) & 0x1F
    imm6 = _sign_extend((((word >> 12) & 1) << 5) | ((word >> 2) & 0x1F), 6)
    if funct3 == 0b000:
        return Instruction(Opcode.ADDI, rd=rd, rs1=rd, imm=imm6)
    if funct3 == 0b001 or funct3 == 0b101:
        offset_bits = (
            (((word >> 12) & 1) << 11)
            | (((word >> 11) & 1) << 4)
            | (((word >> 9) & 0x3) << 8)
            | (((word >> 8) & 1) << 10)
            | (((word >> 7) & 1) << 6)
            | (((word >> 6) & 1) << 7)
            | (((word >> 3) & 0x7) << 1)
            | (((word >> 2) & 1) << 5)
        )
        offset = _sign_extend(offset_bits, 12)
        link = 1 if funct3 == 0b001 else 0
        return Instruction(Opcode.JAL, rd=link, imm=offset)
    if funct3 == 0b010:
        return Instruction(Opcode.ADDI, rd=rd, rs1=0, imm=imm6)
    if funct3 == 0b011:
        if rd == 2:
            imm = _sign_extend(
                (((word >> 12) & 1) << 9)
                | (((word >> 6) & 1) << 4)
                | (((word >> 5) & 1) << 6)
                | (((word >> 3) & 0x3) << 7)
                | (((word >> 2) & 1) << 5),
                10,
            )
            if imm == 0:
                raise CompressionError("reserved C.ADDI16SP")
            return Instruction(Opcode.ADDI, rd=2, rs1=2, imm=imm)
        if imm6 == 0:
            raise CompressionError("reserved C.LUI")
        return Instruction(Opcode.LUI, rd=rd, imm=imm6 & 0xFFFFF)
    if funct3 == 0b100:
        sub_kind = (word >> 10) & 0x3
        rd_prime = _unprime((word >> 7) & 0x7)
        if sub_kind == 0b00 or sub_kind == 0b01:
            shamt = (((word >> 12) & 1) << 5) | ((word >> 2) & 0x1F)
            opcode = Opcode.SRLI if sub_kind == 0b00 else Opcode.SRAI
            if shamt >= 32:
                raise CompressionError("RV32 shift amount >= 32")
            return Instruction(opcode, rd=rd_prime, rs1=rd_prime, imm=shamt)
        if sub_kind == 0b10:
            return Instruction(Opcode.ANDI, rd=rd_prime, rs1=rd_prime, imm=imm6)
        rs2_prime = _unprime((word >> 2) & 0x7)
        funct2 = (word >> 5) & 0x3
        opcode = (Opcode.SUB, Opcode.XOR, Opcode.OR, Opcode.AND)[funct2]
        if (word >> 12) & 1:
            raise CompressionError("RV64-only CA encoding")
        return Instruction(opcode, rd=rd_prime, rs1=rd_prime, rs2=rs2_prime)
    # funct3 110/111: C.BEQZ / C.BNEZ
    rs1_prime = _unprime((word >> 7) & 0x7)
    offset = _sign_extend(
        (((word >> 12) & 1) << 8)
        | (((word >> 10) & 0x3) << 3)
        | (((word >> 5) & 0x3) << 6)
        | (((word >> 3) & 0x3) << 1)
        | (((word >> 2) & 1) << 5),
        9,
    )
    opcode = Opcode.BEQ if funct3 == 0b110 else Opcode.BNE
    return Instruction(opcode, rs1=rs1_prime, rs2=0, imm=offset)


def _decompress_q2(word: int, funct3: int) -> Instruction:
    rd = (word >> 7) & 0x1F
    rs2 = (word >> 2) & 0x1F
    bit12 = (word >> 12) & 1
    if funct3 == 0b000:
        shamt = (bit12 << 5) | rs2
        if shamt >= 32 or rd == 0:
            raise CompressionError("invalid C.SLLI")
        return Instruction(Opcode.SLLI, rd=rd, rs1=rd, imm=shamt)
    if funct3 == 0b010:
        if rd == 0:
            raise CompressionError("reserved C.LWSP")
        imm = (
            (bit12 << 5)
            | (((word >> 4) & 0x7) << 2)
            | (((word >> 2) & 0x3) << 6)
        )
        return Instruction(Opcode.LW, rd=rd, rs1=2, imm=imm)
    if funct3 == 0b110:
        imm = (((word >> 9) & 0xF) << 2) | (((word >> 7) & 0x3) << 6)
        return Instruction(Opcode.SW, rs1=2, rs2=rs2, imm=imm)
    if funct3 == 0b100:
        if bit12 == 0:
            if rs2 == 0:
                if rd == 0:
                    raise CompressionError("reserved C.JR")
                return Instruction(Opcode.JALR, rd=0, rs1=rd, imm=0)
            return Instruction(Opcode.ADD, rd=rd, rs1=0, rs2=rs2)
        if rs2 == 0:
            if rd == 0:
                return Instruction(Opcode.EBREAK)
            return Instruction(Opcode.JALR, rd=1, rs1=rd, imm=0)
        return Instruction(Opcode.ADD, rd=rd, rs1=rd, rs2=rs2)
    raise CompressionError("unsupported quadrant-2 funct3: %d" % funct3)
