"""Architectural state: the paper's ``ARCH`` domain.

An architectural state consists of the program counter, the 32 integer
registers, and memory.  ``x0`` is maintained as a hard-wired zero by
:meth:`ArchState.write_register`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.isa.memory import SparseMemory
from repro.isa.registers import REGISTER_COUNT

_MASK32 = 0xFFFFFFFF


class ArchState:
    """Mutable architectural state of an RV32 hart."""

    __slots__ = ("pc", "regs", "memory")

    def __init__(
        self,
        pc: int = 0,
        regs: Optional[Sequence[int]] = None,
        memory: Optional[SparseMemory] = None,
    ):
        self.pc = pc & _MASK32
        if regs is None:
            self.regs: List[int] = [0] * REGISTER_COUNT
        else:
            if len(regs) != REGISTER_COUNT:
                raise ValueError("expected %d registers" % REGISTER_COUNT)
            self.regs = [value & _MASK32 for value in regs]
            self.regs[0] = 0
        self.memory = memory if memory is not None else SparseMemory()

    def copy(self) -> "ArchState":
        return ArchState(pc=self.pc, regs=list(self.regs), memory=self.memory.copy())

    def read_register(self, index: int) -> int:
        return self.regs[index]

    def write_register(self, index: int, value: int) -> None:
        if index != 0:
            self.regs[index] = value & _MASK32

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArchState):
            return NotImplemented
        return (
            self.pc == other.pc
            and self.regs == other.regs
            and self.memory == other.memory
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ArchState(pc=0x%08x)" % self.pc
