"""Program container: an instruction sequence placed at a base address.

Programs are the unit of test-case generation; both the ISA executor and
the microarchitectural cores fetch instructions through this container,
so instruction memory is cleanly separated from data memory (the models
do not support self-modifying code, matching the paper's testbench).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.isa.instructions import Instruction

DEFAULT_BASE_ADDRESS = 0x0000_1000


class Program:
    """An immutable sequence of instructions at a fixed base address."""

    __slots__ = ("_instructions", "base_address", "_hash")

    def __init__(
        self,
        instructions: Sequence[Instruction],
        base_address: int = DEFAULT_BASE_ADDRESS,
    ):
        if base_address % 4:
            raise ValueError("base address must be word aligned")
        self._instructions: Tuple[Instruction, ...] = tuple(instructions)
        self.base_address = base_address
        self._hash: Optional[int] = None

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        return self._instructions

    @property
    def end_address(self) -> int:
        """First address past the program."""
        return self.base_address + 4 * len(self._instructions)

    def fetch(self, pc: int) -> Optional[Instruction]:
        """Return the instruction at ``pc``, or ``None`` outside the program."""
        offset = pc - self.base_address
        if offset < 0 or offset % 4 or offset >= 4 * len(self._instructions):
            return None
        return self._instructions[offset // 4]

    def address_of(self, index: int) -> int:
        """Address of the instruction at position ``index``."""
        if not 0 <= index < len(self._instructions):
            raise IndexError("instruction index out of range: %r" % (index,))
        return self.base_address + 4 * index

    def encoded_words(self) -> List[int]:
        """Machine words of the whole program, in order."""
        from repro.isa.encoding import encode_instruction

        return [encode_instruction(instruction) for instruction in self._instructions]

    def replace(self, index: int, instruction: Instruction) -> "Program":
        """A copy of this program with position ``index`` replaced."""
        instructions = list(self._instructions)
        instructions[index] = instruction
        return Program(instructions, self.base_address)

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return (
            self.base_address == other.base_address
            and self._instructions == other._instructions
        )

    def __hash__(self) -> int:
        # Memoized: programs are immutable and hashing re-hashes every
        # instruction, which dominates cached per-program lookups (e.g.
        # the batch engine's decode cache).
        if self._hash is None:
            self._hash = hash((self.base_address, self._instructions))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Program(%d instructions @ 0x%08x)" % (
            len(self._instructions),
            self.base_address,
        )
