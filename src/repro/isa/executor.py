"""The ISA-level state machine (the paper's ``ISA : ARCH -> ARCH``).

:class:`IsaExecutor` executes a :class:`~repro.isa.program.Program`
instruction-by-instruction over an :class:`~repro.isa.state.ArchState`
and emits one :class:`ExecRecord` per retired instruction.  ExecRecords
carry everything contract atoms observe: operand values, memory
addresses and data, branch outcomes, and register-dependency distances
(the paper's ``RAW_*_n`` / ``WAW_n`` features).

The microarchitectural cores reuse this executor for functional
semantics and layer cycle-accurate timing on top, mirroring how the
paper extracts architectural state from RVFI retirement events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.state import ArchState

_MASK32 = 0xFFFFFFFF
_SIGN_BIT = 0x80000000

#: Default step bound; test-case programs are short and loop-free, so
#: this only guards against pathological hand-written inputs.
DEFAULT_MAX_STEPS = 4096


class ExecutionLimitExceeded(RuntimeError):
    """Raised when a program does not terminate within the step bound."""


def _signed(value: int) -> int:
    return value - 0x1_0000_0000 if value & _SIGN_BIT else value


@dataclass
class ExecRecord:
    """Architectural facts about one retired instruction.

    ``index`` is the retirement order (0-based).  Dependency distances
    are ``None`` when there is no conflicting instruction within
    :attr:`IsaExecutor.dependency_window` earlier retirements.
    """

    index: int
    pc: int
    next_pc: int
    instruction: Instruction
    rs1_value: int = 0
    rs2_value: int = 0
    rd_value: int = 0
    mem_read_addr: Optional[int] = None
    mem_read_data: Optional[int] = None
    mem_write_addr: Optional[int] = None
    mem_write_data: Optional[int] = None
    branch_taken: Optional[bool] = None
    raw_rs1_dist: Optional[int] = None
    raw_rs2_dist: Optional[int] = None
    war_rd_dist: Optional[int] = None
    waw_dist: Optional[int] = None

    @property
    def opcode(self) -> Opcode:
        return self.instruction.opcode

    @property
    def memory_address(self) -> Optional[int]:
        """The effective address of a load or store, if any."""
        if self.mem_read_addr is not None:
            return self.mem_read_addr
        return self.mem_write_addr

    @property
    def is_control_flow_change(self) -> bool:
        return self.next_pc != (self.pc + 4) & _MASK32


def annotate_dependency_distances(records: List["ExecRecord"], window: int = 4) -> None:
    """(Re)compute the dependency-distance fields of ``records``.

    Used by the executor itself and by consumers that reconstruct
    retirement records from external sources (e.g. VCD waveforms),
    where the dependency features must be re-derived from the
    instruction stream.
    """
    last_writer: Dict[int, int] = {}
    last_reader: Dict[int, int] = {}
    for record in records:
        _annotate_record_dependencies(record, last_writer, last_reader, window)
        _update_dependency_maps(record, last_writer, last_reader)


def _annotate_record_dependencies(
    record: "ExecRecord",
    last_writer: Dict[int, int],
    last_reader: Dict[int, int],
    window: int,
) -> None:
    info = record.instruction.info
    index = record.index

    def distance(event_index: Optional[int]) -> Optional[int]:
        if event_index is None:
            return None
        dist = index - event_index
        return dist if dist <= window else None

    if info.has_rs1 and record.instruction.rs1 != 0:
        record.raw_rs1_dist = distance(last_writer.get(record.instruction.rs1))
    if info.has_rs2 and record.instruction.rs2 != 0:
        record.raw_rs2_dist = distance(last_writer.get(record.instruction.rs2))
    written = record.instruction.written_register
    if written is not None:
        record.war_rd_dist = distance(last_reader.get(written))
        record.waw_dist = distance(last_writer.get(written))


def _update_dependency_maps(
    record: "ExecRecord",
    last_writer: Dict[int, int],
    last_reader: Dict[int, int],
) -> None:
    instruction = record.instruction
    info = instruction.info
    if info.has_rs1 and instruction.rs1 != 0:
        last_reader[instruction.rs1] = record.index
    if info.has_rs2 and instruction.rs2 != 0:
        last_reader[instruction.rs2] = record.index
    written = instruction.written_register
    if written is not None:
        last_writer[written] = record.index


class IsaExecutor:
    """Executes programs at instruction granularity.

    ``dependency_window`` bounds how far back register dependencies are
    tracked; the paper's template uses distances up to ``n = 4``.
    """

    def __init__(self, dependency_window: int = 4):
        self.dependency_window = dependency_window

    def run(
        self,
        program: Program,
        state: ArchState,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> List[ExecRecord]:
        """Execute ``program`` on ``state`` (mutated in place).

        Execution stops when the program counter leaves the program,
        when an ``ECALL``/``EBREAK`` retires, or after ``max_steps``
        instructions (raising :class:`ExecutionLimitExceeded`).
        """
        records: List[ExecRecord] = []
        last_writer: Dict[int, int] = {}
        last_reader: Dict[int, int] = {}
        window = self.dependency_window

        while True:
            instruction = program.fetch(state.pc)
            if instruction is None:
                return records
            if len(records) >= max_steps:
                raise ExecutionLimitExceeded(
                    "program exceeded %d retired instructions" % max_steps
                )
            record = self._step(state, instruction, len(records))
            _annotate_record_dependencies(record, last_writer, last_reader, window)
            _update_dependency_maps(record, last_writer, last_reader)
            records.append(record)
            if instruction.opcode in (Opcode.ECALL, Opcode.EBREAK):
                return records
            state.pc = record.next_pc

    def _step(self, state: ArchState, instruction: Instruction, index: int) -> ExecRecord:
        """Execute one instruction, returning its retirement record."""
        opcode = instruction.opcode
        pc = state.pc
        rs1_value = state.regs[instruction.rs1] if instruction.info.has_rs1 else 0
        rs2_value = state.regs[instruction.rs2] if instruction.info.has_rs2 else 0
        imm = instruction.imm
        record = ExecRecord(
            index=index,
            pc=pc,
            next_pc=(pc + 4) & _MASK32,
            instruction=instruction,
            rs1_value=rs1_value,
            rs2_value=rs2_value,
        )

        result: Optional[int] = None
        if opcode is Opcode.ADDI:
            result = (rs1_value + imm) & _MASK32
        elif opcode is Opcode.ADD:
            result = (rs1_value + rs2_value) & _MASK32
        elif opcode is Opcode.SUB:
            result = (rs1_value - rs2_value) & _MASK32
        elif opcode is Opcode.ANDI:
            result = rs1_value & (imm & _MASK32)
        elif opcode is Opcode.ORI:
            result = rs1_value | (imm & _MASK32)
        elif opcode is Opcode.XORI:
            result = rs1_value ^ (imm & _MASK32)
        elif opcode is Opcode.AND:
            result = rs1_value & rs2_value
        elif opcode is Opcode.OR:
            result = rs1_value | rs2_value
        elif opcode is Opcode.XOR:
            result = rs1_value ^ rs2_value
        elif opcode is Opcode.SLTI:
            result = 1 if _signed(rs1_value) < imm else 0
        elif opcode is Opcode.SLTIU:
            result = 1 if rs1_value < (imm & _MASK32) else 0
        elif opcode is Opcode.SLT:
            result = 1 if _signed(rs1_value) < _signed(rs2_value) else 0
        elif opcode is Opcode.SLTU:
            result = 1 if rs1_value < rs2_value else 0
        elif opcode is Opcode.SLLI:
            result = (rs1_value << imm) & _MASK32
        elif opcode is Opcode.SRLI:
            result = rs1_value >> imm
        elif opcode is Opcode.SRAI:
            result = (_signed(rs1_value) >> imm) & _MASK32
        elif opcode is Opcode.SLL:
            result = (rs1_value << (rs2_value & 0x1F)) & _MASK32
        elif opcode is Opcode.SRL:
            result = rs1_value >> (rs2_value & 0x1F)
        elif opcode is Opcode.SRA:
            result = (_signed(rs1_value) >> (rs2_value & 0x1F)) & _MASK32
        elif opcode is Opcode.LUI:
            result = (imm << 12) & _MASK32
        elif opcode is Opcode.AUIPC:
            result = (pc + (imm << 12)) & _MASK32
        elif opcode is Opcode.MUL:
            result = (rs1_value * rs2_value) & _MASK32
        elif opcode is Opcode.MULH:
            result = ((_signed(rs1_value) * _signed(rs2_value)) >> 32) & _MASK32
        elif opcode is Opcode.MULHSU:
            result = ((_signed(rs1_value) * rs2_value) >> 32) & _MASK32
        elif opcode is Opcode.MULHU:
            result = ((rs1_value * rs2_value) >> 32) & _MASK32
        elif opcode in (Opcode.DIV, Opcode.DIVU, Opcode.REM, Opcode.REMU):
            result = _divide(opcode, rs1_value, rs2_value)
        elif opcode in (Opcode.LB, Opcode.LH, Opcode.LW, Opcode.LBU, Opcode.LHU):
            result = _load(state, record, opcode, rs1_value, imm)
        elif opcode in (Opcode.SB, Opcode.SH, Opcode.SW):
            _store(state, record, opcode, rs1_value, rs2_value, imm)
        elif opcode in (
            Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU, Opcode.BGEU,
        ):
            taken = _branch_condition(opcode, rs1_value, rs2_value)
            record.branch_taken = taken
            if taken:
                record.next_pc = (pc + imm) & _MASK32
        elif opcode is Opcode.JAL:
            result = (pc + 4) & _MASK32
            record.next_pc = (pc + imm) & _MASK32
        elif opcode is Opcode.JALR:
            result = (pc + 4) & _MASK32
            record.next_pc = (rs1_value + imm) & _MASK32 & ~0x1
        elif opcode in (Opcode.FENCE, Opcode.ECALL, Opcode.EBREAK):
            pass
        else:  # pragma: no cover - enum is exhaustive
            raise AssertionError("unhandled opcode: %r" % (opcode,))

        if result is not None and instruction.info.has_rd:
            state.write_register(instruction.rd, result)
            record.rd_value = state.regs[instruction.rd]
        return record


def _divide(opcode: Opcode, dividend: int, divisor: int) -> int:
    """RV32M division semantics, including the divide-by-zero and
    signed-overflow special cases mandated by the ISA manual."""
    if opcode is Opcode.DIVU:
        return _MASK32 if divisor == 0 else dividend // divisor
    if opcode is Opcode.REMU:
        return dividend if divisor == 0 else dividend % divisor
    signed_dividend, signed_divisor = _signed(dividend), _signed(divisor)
    if opcode is Opcode.DIV:
        if signed_divisor == 0:
            return _MASK32
        if signed_dividend == -(1 << 31) and signed_divisor == -1:
            return dividend
        quotient = abs(signed_dividend) // abs(signed_divisor)
        if (signed_dividend < 0) != (signed_divisor < 0):
            quotient = -quotient
        return quotient & _MASK32
    # REM
    if signed_divisor == 0:
        return dividend
    if signed_dividend == -(1 << 31) and signed_divisor == -1:
        return 0
    remainder = abs(signed_dividend) % abs(signed_divisor)
    if signed_dividend < 0:
        remainder = -remainder
    return remainder & _MASK32


def _load(state: ArchState, record: ExecRecord, opcode: Opcode, base: int, imm: int) -> int:
    address = (base + imm) & _MASK32
    if opcode is Opcode.LW:
        data = state.memory.load_word(address)
        value = data
    elif opcode is Opcode.LH:
        data = state.memory.load_halfword(address)
        value = (data - 0x10000) & _MASK32 if data & 0x8000 else data
    elif opcode is Opcode.LHU:
        data = state.memory.load_halfword(address)
        value = data
    elif opcode is Opcode.LB:
        data = state.memory.load_byte(address)
        value = (data - 0x100) & _MASK32 if data & 0x80 else data
    else:  # LBU
        data = state.memory.load_byte(address)
        value = data
    record.mem_read_addr = address
    record.mem_read_data = data
    return value


def _store(
    state: ArchState,
    record: ExecRecord,
    opcode: Opcode,
    base: int,
    value: int,
    imm: int,
) -> None:
    address = (base + imm) & _MASK32
    if opcode is Opcode.SW:
        data = value & _MASK32
        state.memory.store_word(address, data)
    elif opcode is Opcode.SH:
        data = value & 0xFFFF
        state.memory.store_halfword(address, data)
    else:  # SB
        data = value & 0xFF
        state.memory.store_byte(address, data)
    record.mem_write_addr = address
    record.mem_write_data = data


def _branch_condition(opcode: Opcode, lhs: int, rhs: int) -> bool:
    if opcode is Opcode.BEQ:
        return lhs == rhs
    if opcode is Opcode.BNE:
        return lhs != rhs
    if opcode is Opcode.BLT:
        return _signed(lhs) < _signed(rhs)
    if opcode is Opcode.BGE:
        return _signed(lhs) >= _signed(rhs)
    if opcode is Opcode.BLTU:
        return lhs < rhs
    # BGEU
    return lhs >= rhs


def execute_program(
    program: Program,
    state: Optional[ArchState] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    dependency_window: int = 4,
) -> List[ExecRecord]:
    """Convenience wrapper: run ``program`` from ``state`` (or a fresh
    state positioned at the program's base address)."""
    if state is None:
        state = ArchState(pc=program.base_address)
    return IsaExecutor(dependency_window).run(program, state, max_steps)
