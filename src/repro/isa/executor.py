"""The ISA-level state machine (the paper's ``ISA : ARCH -> ARCH``).

:class:`IsaExecutor` executes a :class:`~repro.isa.program.Program`
instruction-by-instruction over an :class:`~repro.isa.state.ArchState`
and emits one :class:`ExecRecord` per retired instruction.  ExecRecords
carry everything contract atoms observe: operand values, memory
addresses and data, branch outcomes, and register-dependency distances
(the paper's ``RAW_*_n`` / ``WAW_n`` features).

The microarchitectural cores reuse this executor for functional
semantics and layer cycle-accurate timing on top, mirroring how the
paper extracts architectural state from RVFI retirement events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.isa.encoding import signed32
from repro.isa.instructions import Instruction, Opcode, OPCODE_INFO
from repro.isa.program import Program
from repro.isa.state import ArchState

_MASK32 = 0xFFFFFFFF
_SIGN_BIT = 0x80000000

#: Default step bound; test-case programs are short and loop-free, so
#: this only guards against pathological hand-written inputs.
DEFAULT_MAX_STEPS = 4096


class ExecutionLimitExceeded(RuntimeError):
    """Raised when a program does not terminate within the step bound."""


#: Shared with the batched engine via :func:`repro.isa.encoding.signed32`
#: so the two interpreters cannot drift on signed semantics.
_signed = signed32


@dataclass(slots=True)
class ExecRecord:
    """Architectural facts about one retired instruction.

    ``index`` is the retirement order (0-based).  Dependency distances
    are ``None`` when there is no conflicting instruction within
    :attr:`IsaExecutor.dependency_window` earlier retirements.

    ``__slots__``-backed: one record is allocated per retired
    instruction of every simulation, so construction cost and memory
    footprint are on the evaluation hot path.
    """

    index: int
    pc: int
    next_pc: int
    instruction: Instruction
    rs1_value: int = 0
    rs2_value: int = 0
    rd_value: int = 0
    mem_read_addr: Optional[int] = None
    mem_read_data: Optional[int] = None
    mem_write_addr: Optional[int] = None
    mem_write_data: Optional[int] = None
    branch_taken: Optional[bool] = None
    raw_rs1_dist: Optional[int] = None
    raw_rs2_dist: Optional[int] = None
    war_rd_dist: Optional[int] = None
    waw_dist: Optional[int] = None

    @property
    def opcode(self) -> Opcode:
        return self.instruction.opcode

    @property
    def memory_address(self) -> Optional[int]:
        """The effective address of a load or store, if any."""
        if self.mem_read_addr is not None:
            return self.mem_read_addr
        return self.mem_write_addr

    @property
    def is_control_flow_change(self) -> bool:
        return self.next_pc != (self.pc + 4) & _MASK32


def annotate_dependency_distances(records: List["ExecRecord"], window: int = 4) -> None:
    """(Re)compute the dependency-distance fields of ``records``.

    Used by the executor itself and by consumers that reconstruct
    retirement records from external sources (e.g. VCD waveforms),
    where the dependency features must be re-derived from the
    instruction stream.
    """
    last_writer: Dict[int, int] = {}
    last_reader: Dict[int, int] = {}
    for record in records:
        _annotate_record(
            record,
            OPCODE_INFO[record.instruction.opcode],
            last_writer,
            last_reader,
            window,
        )


def _annotate_record(
    record: "ExecRecord",
    info,
    last_writer: Dict[int, int],
    last_reader: Dict[int, int],
    window: int,
) -> None:
    """Annotate one record's dependency distances and fold it into the
    reader/writer maps — a single pass per retirement.

    Distances are computed against the maps *before* this record's own
    accesses are added, so a register both read and written by the
    same instruction never reports a self-dependency.  Applicable
    fields are always (re)assigned — possibly to ``None`` — so
    re-annotating already-annotated records (e.g. with a smaller
    window) never leaves stale distances behind.
    """
    instruction = record.instruction
    index = record.index
    reads_rs1 = info.has_rs1 and instruction.rs1 != 0
    reads_rs2 = info.has_rs2 and instruction.rs2 != 0
    written = instruction.rd if info.has_rd and instruction.rd != 0 else None
    if reads_rs1:
        event = last_writer.get(instruction.rs1)
        record.raw_rs1_dist = (
            index - event
            if event is not None and index - event <= window
            else None
        )
    if reads_rs2:
        event = last_writer.get(instruction.rs2)
        record.raw_rs2_dist = (
            index - event
            if event is not None and index - event <= window
            else None
        )
    if written is not None:
        event = last_reader.get(written)
        record.war_rd_dist = (
            index - event
            if event is not None and index - event <= window
            else None
        )
        event = last_writer.get(written)
        record.waw_dist = (
            index - event
            if event is not None and index - event <= window
            else None
        )
    if reads_rs1:
        last_reader[instruction.rs1] = index
    if reads_rs2:
        last_reader[instruction.rs2] = index
    if written is not None:
        last_writer[written] = index


class IsaExecutor:
    """Executes programs at instruction granularity.

    ``dependency_window`` bounds how far back register dependencies are
    tracked; the paper's template uses distances up to ``n = 4``.
    """

    def __init__(self, dependency_window: int = 4):
        self.dependency_window = dependency_window

    def run(
        self,
        program: Program,
        state: ArchState,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> List[ExecRecord]:
        """Execute ``program`` on ``state`` (mutated in place).

        Execution stops when the program counter leaves the program,
        when an ``ECALL``/``EBREAK`` retires, or after ``max_steps``
        instructions (raising :class:`ExecutionLimitExceeded`).
        """
        records: List[ExecRecord] = []
        last_writer: Dict[int, int] = {}
        last_reader: Dict[int, int] = {}
        window = self.dependency_window
        dispatch = _DISPATCH
        instructions = program.instructions
        base_address = program.base_address
        code_limit = 4 * len(instructions)
        regs = state.regs

        while True:
            # Inlined Program.fetch: the bounds check runs once per
            # retired instruction of every simulation.
            offset = state.pc - base_address
            if offset < 0 or offset & 0x3 or offset >= code_limit:
                return records
            instruction = instructions[offset >> 2]
            if len(records) >= max_steps:
                raise ExecutionLimitExceeded(
                    "program exceeded %d retired instructions" % max_steps
                )
            handler, info, is_terminal = dispatch[instruction.opcode]
            pc = state.pc
            rs1_value = regs[instruction.rs1] if info.has_rs1 else 0
            rs2_value = regs[instruction.rs2] if info.has_rs2 else 0
            record = ExecRecord(
                len(records),
                pc,
                (pc + 4) & _MASK32,
                instruction,
                rs1_value,
                rs2_value,
            )
            result = handler(state, record, instruction, rs1_value, rs2_value)
            if result is not None and info.has_rd:
                state.write_register(instruction.rd, result)
                record.rd_value = regs[instruction.rd]
            _annotate_record(record, info, last_writer, last_reader, window)
            records.append(record)
            if is_terminal:
                return records
            state.pc = record.next_pc

    def step(self, state: ArchState, instruction: Instruction, index: int) -> ExecRecord:
        """Execute one instruction, returning its retirement record.

        Single-instruction entry point (``run`` inlines the same
        sequence); dispatch is one per-opcode table lookup (see
        :data:`_DISPATCH`) instead of an if/elif opcode chain.
        """
        handler, info, _ = _DISPATCH[instruction.opcode]
        pc = state.pc
        rs1_value = state.regs[instruction.rs1] if info.has_rs1 else 0
        rs2_value = state.regs[instruction.rs2] if info.has_rs2 else 0
        record = ExecRecord(
            index,
            pc,
            (pc + 4) & _MASK32,
            instruction,
            rs1_value,
            rs2_value,
        )
        result = handler(state, record, instruction, rs1_value, rs2_value)
        if result is not None and info.has_rd:
            state.write_register(instruction.rd, result)
            record.rd_value = state.regs[instruction.rd]
        return record


#: Per-opcode instruction semantics.  Each handler receives the
#: mutable retirement record (``pc``/``next_pc`` pre-filled with the
#: fall-through values) and returns the rd result, or ``None`` when the
#: opcode writes no register.
OpcodeHandler = Callable[
    [ArchState, ExecRecord, Instruction, int, int], Optional[int]
]

_HANDLERS: Dict[Opcode, OpcodeHandler] = {}


def _handles(*opcodes: Opcode):
    def register(handler: OpcodeHandler) -> OpcodeHandler:
        for opcode in opcodes:
            _HANDLERS[opcode] = handler
        return handler

    return register


@_handles(Opcode.ADDI)
def _exec_addi(state, record, instruction, rs1_value, rs2_value):
    return (rs1_value + instruction.imm) & _MASK32


@_handles(Opcode.ADD)
def _exec_add(state, record, instruction, rs1_value, rs2_value):
    return (rs1_value + rs2_value) & _MASK32


@_handles(Opcode.SUB)
def _exec_sub(state, record, instruction, rs1_value, rs2_value):
    return (rs1_value - rs2_value) & _MASK32


@_handles(Opcode.ANDI)
def _exec_andi(state, record, instruction, rs1_value, rs2_value):
    return rs1_value & (instruction.imm & _MASK32)


@_handles(Opcode.ORI)
def _exec_ori(state, record, instruction, rs1_value, rs2_value):
    return rs1_value | (instruction.imm & _MASK32)


@_handles(Opcode.XORI)
def _exec_xori(state, record, instruction, rs1_value, rs2_value):
    return rs1_value ^ (instruction.imm & _MASK32)


@_handles(Opcode.AND)
def _exec_and(state, record, instruction, rs1_value, rs2_value):
    return rs1_value & rs2_value


@_handles(Opcode.OR)
def _exec_or(state, record, instruction, rs1_value, rs2_value):
    return rs1_value | rs2_value


@_handles(Opcode.XOR)
def _exec_xor(state, record, instruction, rs1_value, rs2_value):
    return rs1_value ^ rs2_value


@_handles(Opcode.SLTI)
def _exec_slti(state, record, instruction, rs1_value, rs2_value):
    return 1 if _signed(rs1_value) < instruction.imm else 0


@_handles(Opcode.SLTIU)
def _exec_sltiu(state, record, instruction, rs1_value, rs2_value):
    return 1 if rs1_value < (instruction.imm & _MASK32) else 0


@_handles(Opcode.SLT)
def _exec_slt(state, record, instruction, rs1_value, rs2_value):
    return 1 if _signed(rs1_value) < _signed(rs2_value) else 0


@_handles(Opcode.SLTU)
def _exec_sltu(state, record, instruction, rs1_value, rs2_value):
    return 1 if rs1_value < rs2_value else 0


@_handles(Opcode.SLLI)
def _exec_slli(state, record, instruction, rs1_value, rs2_value):
    return (rs1_value << instruction.imm) & _MASK32


@_handles(Opcode.SRLI)
def _exec_srli(state, record, instruction, rs1_value, rs2_value):
    return rs1_value >> instruction.imm


@_handles(Opcode.SRAI)
def _exec_srai(state, record, instruction, rs1_value, rs2_value):
    return (_signed(rs1_value) >> instruction.imm) & _MASK32


@_handles(Opcode.SLL)
def _exec_sll(state, record, instruction, rs1_value, rs2_value):
    return (rs1_value << (rs2_value & 0x1F)) & _MASK32


@_handles(Opcode.SRL)
def _exec_srl(state, record, instruction, rs1_value, rs2_value):
    return rs1_value >> (rs2_value & 0x1F)


@_handles(Opcode.SRA)
def _exec_sra(state, record, instruction, rs1_value, rs2_value):
    return (_signed(rs1_value) >> (rs2_value & 0x1F)) & _MASK32


@_handles(Opcode.LUI)
def _exec_lui(state, record, instruction, rs1_value, rs2_value):
    return (instruction.imm << 12) & _MASK32


@_handles(Opcode.AUIPC)
def _exec_auipc(state, record, instruction, rs1_value, rs2_value):
    return (record.pc + (instruction.imm << 12)) & _MASK32


@_handles(Opcode.MUL)
def _exec_mul(state, record, instruction, rs1_value, rs2_value):
    return (rs1_value * rs2_value) & _MASK32


@_handles(Opcode.MULH)
def _exec_mulh(state, record, instruction, rs1_value, rs2_value):
    return ((_signed(rs1_value) * _signed(rs2_value)) >> 32) & _MASK32


@_handles(Opcode.MULHSU)
def _exec_mulhsu(state, record, instruction, rs1_value, rs2_value):
    return ((_signed(rs1_value) * rs2_value) >> 32) & _MASK32


@_handles(Opcode.MULHU)
def _exec_mulhu(state, record, instruction, rs1_value, rs2_value):
    return ((rs1_value * rs2_value) >> 32) & _MASK32


@_handles(Opcode.DIV, Opcode.DIVU, Opcode.REM, Opcode.REMU)
def _exec_divide(state, record, instruction, rs1_value, rs2_value):
    return _divide(instruction.opcode, rs1_value, rs2_value)


@_handles(Opcode.LB, Opcode.LH, Opcode.LW, Opcode.LBU, Opcode.LHU)
def _exec_load(state, record, instruction, rs1_value, rs2_value):
    return _load(state, record, instruction.opcode, rs1_value, instruction.imm)


@_handles(Opcode.SB, Opcode.SH, Opcode.SW)
def _exec_store(state, record, instruction, rs1_value, rs2_value):
    _store(state, record, instruction.opcode, rs1_value, rs2_value, instruction.imm)
    return None


@_handles(
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU, Opcode.BGEU,
)
def _exec_branch(state, record, instruction, rs1_value, rs2_value):
    taken = _branch_condition(instruction.opcode, rs1_value, rs2_value)
    record.branch_taken = taken
    if taken:
        record.next_pc = (record.pc + instruction.imm) & _MASK32
    return None


@_handles(Opcode.JAL)
def _exec_jal(state, record, instruction, rs1_value, rs2_value):
    record.next_pc = (record.pc + instruction.imm) & _MASK32
    return (record.pc + 4) & _MASK32


@_handles(Opcode.JALR)
def _exec_jalr(state, record, instruction, rs1_value, rs2_value):
    record.next_pc = (rs1_value + instruction.imm) & _MASK32 & ~0x1
    return (record.pc + 4) & _MASK32


@_handles(Opcode.FENCE, Opcode.ECALL, Opcode.EBREAK)
def _exec_system(state, record, instruction, rs1_value, rs2_value):
    return None


assert set(_HANDLERS) == set(Opcode), "dispatch table must cover every opcode"

#: opcode -> (handler, static metadata, terminates-execution) — one
#: dict lookup per retired instruction covers dispatch, operand
#: applicability, and the ECALL/EBREAK stop check.
_DISPATCH = {
    opcode: (
        handler,
        OPCODE_INFO[opcode],
        opcode in (Opcode.ECALL, Opcode.EBREAK),
    )
    for opcode, handler in _HANDLERS.items()
}


def _divide(opcode: Opcode, dividend: int, divisor: int) -> int:
    """RV32M division semantics, including the divide-by-zero and
    signed-overflow special cases mandated by the ISA manual."""
    if opcode is Opcode.DIVU:
        return _MASK32 if divisor == 0 else dividend // divisor
    if opcode is Opcode.REMU:
        return dividend if divisor == 0 else dividend % divisor
    signed_dividend, signed_divisor = _signed(dividend), _signed(divisor)
    if opcode is Opcode.DIV:
        if signed_divisor == 0:
            return _MASK32
        if signed_dividend == -(1 << 31) and signed_divisor == -1:
            return dividend
        quotient = abs(signed_dividend) // abs(signed_divisor)
        if (signed_dividend < 0) != (signed_divisor < 0):
            quotient = -quotient
        return quotient & _MASK32
    # REM
    if signed_divisor == 0:
        return dividend
    if signed_dividend == -(1 << 31) and signed_divisor == -1:
        return 0
    remainder = abs(signed_dividend) % abs(signed_divisor)
    if signed_dividend < 0:
        remainder = -remainder
    return remainder & _MASK32


def _load(state: ArchState, record: ExecRecord, opcode: Opcode, base: int, imm: int) -> int:
    address = (base + imm) & _MASK32
    if opcode is Opcode.LW:
        data = state.memory.load_word(address)
        value = data
    elif opcode is Opcode.LH:
        data = state.memory.load_halfword(address)
        value = (data - 0x10000) & _MASK32 if data & 0x8000 else data
    elif opcode is Opcode.LHU:
        data = state.memory.load_halfword(address)
        value = data
    elif opcode is Opcode.LB:
        data = state.memory.load_byte(address)
        value = (data - 0x100) & _MASK32 if data & 0x80 else data
    else:  # LBU
        data = state.memory.load_byte(address)
        value = data
    record.mem_read_addr = address
    record.mem_read_data = data
    return value


def _store(
    state: ArchState,
    record: ExecRecord,
    opcode: Opcode,
    base: int,
    value: int,
    imm: int,
) -> None:
    address = (base + imm) & _MASK32
    if opcode is Opcode.SW:
        data = value & _MASK32
        state.memory.store_word(address, data)
    elif opcode is Opcode.SH:
        data = value & 0xFFFF
        state.memory.store_halfword(address, data)
    else:  # SB
        data = value & 0xFF
        state.memory.store_byte(address, data)
    record.mem_write_addr = address
    record.mem_write_data = data


def _branch_condition(opcode: Opcode, lhs: int, rhs: int) -> bool:
    if opcode is Opcode.BEQ:
        return lhs == rhs
    if opcode is Opcode.BNE:
        return lhs != rhs
    if opcode is Opcode.BLT:
        return _signed(lhs) < _signed(rhs)
    if opcode is Opcode.BGE:
        return _signed(lhs) >= _signed(rhs)
    if opcode is Opcode.BLTU:
        return lhs < rhs
    # BGEU
    return lhs >= rhs


def execute_program(
    program: Program,
    state: Optional[ArchState] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    dependency_window: int = 4,
) -> List[ExecRecord]:
    """Convenience wrapper: run ``program`` from ``state`` (or a fresh
    state positioned at the program's base address)."""
    if state is None:
        state = ArchState(pc=program.base_address)
    return IsaExecutor(dependency_window).run(program, state, max_steps)
