"""Instruction model for the RV32IM instruction set.

Every supported operation is an :class:`Opcode`.  Static per-opcode
metadata (instruction format, operand applicability, category) lives in
:data:`OPCODE_INFO`; the contract template (see
``repro.contracts.riscv_template``) is generated from this metadata, so
it is the single source of truth for "which atoms apply to which
instruction type".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class InstructionFormat(enum.Enum):
    """The six base encoding formats of RV32I."""

    R = "R"
    I = "I"  # noqa: E741 - canonical RISC-V format name
    S = "S"
    B = "B"
    U = "U"
    J = "J"


class InstructionCategory(enum.Enum):
    """Instruction categories used in the paper's contract tables.

    The rows of Tables I and II group opcodes into these categories;
    ``JUMP`` and ``SYSTEM`` exist for completeness (the paper folds
    unconditional jumps into the branch-leakage discussion).
    """

    ARITHMETIC = "arithmetic"
    MULTIPLICATION = "multiplication"
    DIVISION = "division"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    SYSTEM = "system"


class Opcode(enum.Enum):
    """All RV32IM operations supported by the toolchain."""

    # RV32I upper-immediate / control transfer
    LUI = "lui"
    AUIPC = "auipc"
    JAL = "jal"
    JALR = "jalr"
    # Conditional branches
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLTU = "bltu"
    BGEU = "bgeu"
    # Loads
    LB = "lb"
    LH = "lh"
    LW = "lw"
    LBU = "lbu"
    LHU = "lhu"
    # Stores
    SB = "sb"
    SH = "sh"
    SW = "sw"
    # Immediate ALU
    ADDI = "addi"
    SLTI = "slti"
    SLTIU = "sltiu"
    XORI = "xori"
    ORI = "ori"
    ANDI = "andi"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    # Register ALU
    ADD = "add"
    SUB = "sub"
    SLL = "sll"
    SLT = "slt"
    SLTU = "sltu"
    XOR = "xor"
    SRL = "srl"
    SRA = "sra"
    OR = "or"
    AND = "and"
    # M extension
    MUL = "mul"
    MULH = "mulh"
    MULHSU = "mulhsu"
    MULHU = "mulhu"
    DIV = "div"
    DIVU = "divu"
    REM = "rem"
    REMU = "remu"
    # System / misc (executed as timing-neutral no-ops by the cores)
    FENCE = "fence"
    ECALL = "ecall"
    EBREAK = "ebreak"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Opcode.%s" % self.name


@dataclass(frozen=True)
class OpcodeInfo:
    """Static metadata describing one opcode."""

    opcode: Opcode
    fmt: InstructionFormat
    category: InstructionCategory
    has_rd: bool
    has_rs1: bool
    has_rs2: bool
    has_imm: bool

    @property
    def is_memory(self) -> bool:
        return self.category in (InstructionCategory.LOAD, InstructionCategory.STORE)

    @property
    def is_control(self) -> bool:
        return self.category in (InstructionCategory.BRANCH, InstructionCategory.JUMP)


def _info(opcode, fmt, category, rd, rs1, rs2, imm):
    return OpcodeInfo(opcode, fmt, category, rd, rs1, rs2, imm)


_F = InstructionFormat
_C = InstructionCategory

OPCODE_INFO = {
    Opcode.LUI: _info(Opcode.LUI, _F.U, _C.ARITHMETIC, True, False, False, True),
    Opcode.AUIPC: _info(Opcode.AUIPC, _F.U, _C.ARITHMETIC, True, False, False, True),
    Opcode.JAL: _info(Opcode.JAL, _F.J, _C.JUMP, True, False, False, True),
    Opcode.JALR: _info(Opcode.JALR, _F.I, _C.JUMP, True, True, False, True),
    Opcode.BEQ: _info(Opcode.BEQ, _F.B, _C.BRANCH, False, True, True, True),
    Opcode.BNE: _info(Opcode.BNE, _F.B, _C.BRANCH, False, True, True, True),
    Opcode.BLT: _info(Opcode.BLT, _F.B, _C.BRANCH, False, True, True, True),
    Opcode.BGE: _info(Opcode.BGE, _F.B, _C.BRANCH, False, True, True, True),
    Opcode.BLTU: _info(Opcode.BLTU, _F.B, _C.BRANCH, False, True, True, True),
    Opcode.BGEU: _info(Opcode.BGEU, _F.B, _C.BRANCH, False, True, True, True),
    Opcode.LB: _info(Opcode.LB, _F.I, _C.LOAD, True, True, False, True),
    Opcode.LH: _info(Opcode.LH, _F.I, _C.LOAD, True, True, False, True),
    Opcode.LW: _info(Opcode.LW, _F.I, _C.LOAD, True, True, False, True),
    Opcode.LBU: _info(Opcode.LBU, _F.I, _C.LOAD, True, True, False, True),
    Opcode.LHU: _info(Opcode.LHU, _F.I, _C.LOAD, True, True, False, True),
    Opcode.SB: _info(Opcode.SB, _F.S, _C.STORE, False, True, True, True),
    Opcode.SH: _info(Opcode.SH, _F.S, _C.STORE, False, True, True, True),
    Opcode.SW: _info(Opcode.SW, _F.S, _C.STORE, False, True, True, True),
    Opcode.ADDI: _info(Opcode.ADDI, _F.I, _C.ARITHMETIC, True, True, False, True),
    Opcode.SLTI: _info(Opcode.SLTI, _F.I, _C.ARITHMETIC, True, True, False, True),
    Opcode.SLTIU: _info(Opcode.SLTIU, _F.I, _C.ARITHMETIC, True, True, False, True),
    Opcode.XORI: _info(Opcode.XORI, _F.I, _C.ARITHMETIC, True, True, False, True),
    Opcode.ORI: _info(Opcode.ORI, _F.I, _C.ARITHMETIC, True, True, False, True),
    Opcode.ANDI: _info(Opcode.ANDI, _F.I, _C.ARITHMETIC, True, True, False, True),
    Opcode.SLLI: _info(Opcode.SLLI, _F.I, _C.ARITHMETIC, True, True, False, True),
    Opcode.SRLI: _info(Opcode.SRLI, _F.I, _C.ARITHMETIC, True, True, False, True),
    Opcode.SRAI: _info(Opcode.SRAI, _F.I, _C.ARITHMETIC, True, True, False, True),
    Opcode.ADD: _info(Opcode.ADD, _F.R, _C.ARITHMETIC, True, True, True, False),
    Opcode.SUB: _info(Opcode.SUB, _F.R, _C.ARITHMETIC, True, True, True, False),
    Opcode.SLL: _info(Opcode.SLL, _F.R, _C.ARITHMETIC, True, True, True, False),
    Opcode.SLT: _info(Opcode.SLT, _F.R, _C.ARITHMETIC, True, True, True, False),
    Opcode.SLTU: _info(Opcode.SLTU, _F.R, _C.ARITHMETIC, True, True, True, False),
    Opcode.XOR: _info(Opcode.XOR, _F.R, _C.ARITHMETIC, True, True, True, False),
    Opcode.SRL: _info(Opcode.SRL, _F.R, _C.ARITHMETIC, True, True, True, False),
    Opcode.SRA: _info(Opcode.SRA, _F.R, _C.ARITHMETIC, True, True, True, False),
    Opcode.OR: _info(Opcode.OR, _F.R, _C.ARITHMETIC, True, True, True, False),
    Opcode.AND: _info(Opcode.AND, _F.R, _C.ARITHMETIC, True, True, True, False),
    Opcode.MUL: _info(Opcode.MUL, _F.R, _C.MULTIPLICATION, True, True, True, False),
    Opcode.MULH: _info(Opcode.MULH, _F.R, _C.MULTIPLICATION, True, True, True, False),
    Opcode.MULHSU: _info(Opcode.MULHSU, _F.R, _C.MULTIPLICATION, True, True, True, False),
    Opcode.MULHU: _info(Opcode.MULHU, _F.R, _C.MULTIPLICATION, True, True, True, False),
    Opcode.DIV: _info(Opcode.DIV, _F.R, _C.DIVISION, True, True, True, False),
    Opcode.DIVU: _info(Opcode.DIVU, _F.R, _C.DIVISION, True, True, True, False),
    Opcode.REM: _info(Opcode.REM, _F.R, _C.DIVISION, True, True, True, False),
    Opcode.REMU: _info(Opcode.REMU, _F.R, _C.DIVISION, True, True, True, False),
    Opcode.FENCE: _info(Opcode.FENCE, _F.I, _C.SYSTEM, False, False, False, False),
    Opcode.ECALL: _info(Opcode.ECALL, _F.I, _C.SYSTEM, False, False, False, False),
    Opcode.EBREAK: _info(Opcode.EBREAK, _F.I, _C.SYSTEM, False, False, False, False),
}

#: Opcodes whose immediate is a shift amount (0..31) rather than a
#: sign-extended 12-bit value.
SHIFT_IMMEDIATE_OPCODES = frozenset({Opcode.SLLI, Opcode.SRLI, Opcode.SRAI})

#: Load/store element width in bytes.
MEMORY_ACCESS_WIDTH = {
    Opcode.LB: 1, Opcode.LBU: 1, Opcode.LH: 2, Opcode.LHU: 2, Opcode.LW: 4,
    Opcode.SB: 1, Opcode.SH: 2, Opcode.SW: 4,
}

_IMMEDIATE_RANGE = {
    InstructionFormat.I: (-2048, 2047),
    InstructionFormat.S: (-2048, 2047),
    InstructionFormat.B: (-4096, 4094),
    InstructionFormat.U: (0, 0xFFFFF),
    InstructionFormat.J: (-1048576, 1048574),
}


@dataclass(frozen=True)
class Instruction:
    """A single decoded RV32IM instruction.

    Operand fields that do not apply to the opcode must be ``0`` (for
    register indices) or ``0`` (for the immediate); validation enforces
    the applicable ranges so every constructed instruction is encodable.
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        info = OPCODE_INFO[self.opcode]
        if not (0 <= self.rd <= 31 and 0 <= self.rs1 <= 31 and 0 <= self.rs2 <= 31):
            for field_name in ("rd", "rs1", "rs2"):
                value = getattr(self, field_name)
                if not 0 <= value <= 31:
                    raise ValueError(
                        "%s out of range for %s: %r"
                        % (field_name, self.opcode.name, value)
                    )
        if info.has_imm:
            self._validate_immediate(info)

    def _validate_immediate(self, info: OpcodeInfo) -> None:
        if self.opcode in SHIFT_IMMEDIATE_OPCODES:
            low, high = 0, 31
        else:
            low, high = _IMMEDIATE_RANGE[info.fmt]
        if not low <= self.imm <= high:
            raise ValueError(
                "immediate out of range for %s: %r not in [%d, %d]"
                % (self.opcode.name, self.imm, low, high)
            )
        if info.fmt in (InstructionFormat.B, InstructionFormat.J) and self.imm % 2:
            raise ValueError(
                "branch/jump offset must be even for %s: %r" % (self.opcode.name, self.imm)
            )

    @property
    def info(self) -> OpcodeInfo:
        return OPCODE_INFO[self.opcode]

    @property
    def category(self) -> InstructionCategory:
        return OPCODE_INFO[self.opcode].category

    @property
    def memory_width(self) -> Optional[int]:
        """Access width in bytes for loads/stores, else ``None``."""
        return MEMORY_ACCESS_WIDTH.get(self.opcode)

    def reads(self, register: int) -> bool:
        """Whether this instruction reads ``register`` (x0 never counts)."""
        if register == 0:
            return False
        info = OPCODE_INFO[self.opcode]
        return (info.has_rs1 and self.rs1 == register) or (
            info.has_rs2 and self.rs2 == register
        )

    def writes(self, register: int) -> bool:
        """Whether this instruction writes ``register`` (x0 never counts)."""
        if register == 0:
            return False
        info = OPCODE_INFO[self.opcode]
        return info.has_rd and self.rd == register

    @property
    def written_register(self) -> Optional[int]:
        """The architecturally-written register index, if any (not x0)."""
        info = OPCODE_INFO[self.opcode]
        if info.has_rd and self.rd != 0:
            return self.rd
        return None

    def __str__(self) -> str:
        from repro.isa.disassembler import disassemble

        return disassemble(self)
