"""RV32IM instruction-set architecture layer.

This package implements the architectural (ISA-level) half of the
contract-synthesis methodology: the instruction model, binary encoding,
an assembler/disassembler pair, the architectural state, and the ISA
executor that realizes the paper's ``ISA : ARCH -> ARCH`` state machine.
"""

from repro.isa.instructions import (
    Instruction,
    InstructionCategory,
    Opcode,
    OPCODE_INFO,
)
from repro.isa.registers import ABI_NAMES, REGISTER_COUNT, register_name
from repro.isa.state import ArchState
from repro.isa.memory import SparseMemory
from repro.isa.program import Program
from repro.isa.executor import ExecRecord, IsaExecutor, execute_program
from repro.isa.encoding import encode_instruction, decode_instruction
from repro.isa.assembler import assemble, assemble_program, AssemblerError
from repro.isa.disassembler import disassemble, disassemble_program

__all__ = [
    "ABI_NAMES",
    "ArchState",
    "AssemblerError",
    "ExecRecord",
    "Instruction",
    "InstructionCategory",
    "IsaExecutor",
    "Opcode",
    "OPCODE_INFO",
    "Program",
    "REGISTER_COUNT",
    "SparseMemory",
    "assemble",
    "assemble_program",
    "decode_instruction",
    "disassemble",
    "disassemble_program",
    "encode_instruction",
    "execute_program",
    "register_name",
]
