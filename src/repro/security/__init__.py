"""Contract-based program-security auditing.

The pay-off of leakage contracts (§II-D): a program whose contract
trace is independent of its secrets leaks nothing on *any* processor
satisfying the contract.  This package implements that check — the
downstream use case the paper's related work ([19], [22]) builds
entire verifiers around.
"""

from repro.security.policy import SecurityPolicy
from repro.security.audit import (
    AuditResult,
    Counterexample,
    audit_program,
    ground_truth_leakage,
)

__all__ = [
    "AuditResult",
    "Counterexample",
    "SecurityPolicy",
    "audit_program",
    "ground_truth_leakage",
]
