"""Security policies: which architectural state holds secrets."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

from repro.isa.state import ArchState


@dataclass(frozen=True)
class SecurityPolicy:
    """Declares the secret part of the initial architectural state.

    ``secret_registers`` hold values the attacker must not learn;
    ``secret_memory_words`` are word-aligned addresses whose contents
    are secret.  Everything else is public and fixed across the
    sampled executions.
    """

    secret_registers: FrozenSet[int] = frozenset()
    secret_memory_words: FrozenSet[int] = frozenset()
    #: Candidate secret values; defaults to a mix of small and wide
    #: values when empty.
    value_pool: Tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        for register in self.secret_registers:
            if not 1 <= register <= 31:
                raise ValueError("secret register out of range: %r" % (register,))
        for address in self.secret_memory_words:
            if address % 4:
                raise ValueError("secret memory address must be word aligned")
        if not self.secret_registers and not self.secret_memory_words:
            raise ValueError("policy declares no secrets")

    def sample_assignment(self, rng: random.Random) -> Dict[str, Dict[int, int]]:
        """One random assignment of values to all secret locations."""
        def draw() -> int:
            if self.value_pool:
                return self.value_pool[rng.randrange(len(self.value_pool))]
            if rng.random() < 0.5:
                return rng.randrange(0, 256)
            return rng.getrandbits(32)

        return {
            "registers": {register: draw() for register in sorted(self.secret_registers)},
            "memory": {address: draw() for address in sorted(self.secret_memory_words)},
        }

    def apply(self, state: ArchState, assignment: Dict[str, Dict[int, int]]) -> ArchState:
        """A copy of ``state`` with the secret assignment installed."""
        prepared = state.copy()
        for register, value in assignment["registers"].items():
            prepared.write_register(register, value)
        for address, value in assignment["memory"].items():
            prepared.memory.store_word(address, value)
        return prepared


def registers(*indices: int) -> FrozenSet[int]:
    """Convenience constructor: ``SecurityPolicy(registers(10, 11))``."""
    return frozenset(indices)
