"""The contract-level non-interference check.

``audit_program`` samples secret assignments under a policy, computes
the contract's leakage trace for each resulting initial state, and
reports the first pair of assignments with differing traces.  If all
traces agree, the program is (testing-wise) non-interferent w.r.t.
the contract — and therefore safe on every core that satisfies it.

``ground_truth_leakage`` performs the corresponding microarchitectural
experiment on a concrete core, which is how the audit's verdicts are
validated in tests: contract-secure programs must be attacker-secure
on cores the contract was synthesized from (up to the contract's test
coverage), while the converse may fail (contracts over-approximate).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.attacker.base import Attacker
from repro.attacker.retirement import RetirementTimingAttacker
from repro.contracts.observations import contract_observation_trace
from repro.contracts.template import Contract
from repro.isa.executor import execute_program
from repro.isa.program import Program
from repro.isa.state import ArchState
from repro.security.policy import SecurityPolicy
from repro.uarch.core import Core


@dataclass
class Counterexample:
    """Two secret assignments the contract distinguishes."""

    assignment_a: Dict[str, Dict[int, int]]
    assignment_b: Dict[str, Dict[int, int]]
    #: First execution step at which the contract traces differ
    #: (``None`` when the traces differ in length).
    first_divergence_step: Optional[int]


@dataclass
class AuditResult:
    """Outcome of a contract-level program audit."""

    secure: bool
    samples: int
    counterexample: Optional[Counterexample] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.secure


def _first_divergence(trace_a, trace_b) -> Optional[int]:
    for step, (obs_a, obs_b) in enumerate(zip(trace_a, trace_b)):
        if obs_a != obs_b:
            return step
    if len(trace_a) != len(trace_b):
        return None
    return None


def audit_program(
    program: Program,
    contract: Contract,
    policy: SecurityPolicy,
    base_state: Optional[ArchState] = None,
    samples: int = 16,
    seed: int = 0,
) -> AuditResult:
    """Check that ``program``'s contract trace is secret-independent.

    ``base_state`` fixes the public inputs (defaults to all-zero
    registers); ``samples`` secret assignments are drawn and all
    resulting traces compared against the first.
    """
    if samples < 2:
        raise ValueError("need at least two samples to compare")
    rng = random.Random(seed)
    state = (
        base_state.copy()
        if base_state is not None
        else ArchState(pc=program.base_address)
    )
    state.pc = program.base_address

    reference_assignment = policy.sample_assignment(rng)
    reference_records = execute_program(
        program, policy.apply(state, reference_assignment)
    )
    reference_trace = contract_observation_trace(contract, reference_records)

    for _ in range(samples - 1):
        assignment = policy.sample_assignment(rng)
        records = execute_program(program, policy.apply(state, assignment))
        trace = contract_observation_trace(contract, records)
        if trace != reference_trace:
            return AuditResult(
                secure=False,
                samples=samples,
                counterexample=Counterexample(
                    assignment_a=reference_assignment,
                    assignment_b=assignment,
                    first_divergence_step=_first_divergence(reference_trace, trace),
                ),
            )
    return AuditResult(secure=True, samples=samples)


def ground_truth_leakage(
    program: Program,
    core: Core,
    policy: SecurityPolicy,
    base_state: Optional[ArchState] = None,
    samples: int = 16,
    seed: int = 0,
    attacker: Optional[Attacker] = None,
) -> bool:
    """Whether a microarchitectural attacker on ``core`` can actually
    distinguish secret assignments of ``program`` (testing-based)."""
    rng = random.Random(seed)
    attacker = attacker if attacker is not None else RetirementTimingAttacker()
    state = (
        base_state.copy()
        if base_state is not None
        else ArchState(pc=program.base_address)
    )
    state.pc = program.base_address

    reference = core.simulate(
        program, policy.apply(state, policy.sample_assignment(rng))
    )
    for _ in range(samples - 1):
        result = core.simulate(
            program, policy.apply(state, policy.sample_assignment(rng))
        )
        if attacker.distinguishes(reference, result):
            return True
    return False
