"""Evaluation results: the data contract between evaluation and synthesis.

Synthesis never looks at programs or traces — only at, per test case,
the attacker verdict and the set of distinguishing atoms.  Datasets
serialize to JSON so that expensive evaluations can be cached and
re-used across template restrictions and synthesis-set sweeps, exactly
as the paper reuses its 2M-test-case evaluation across Fig. 2/3.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence


@dataclass(frozen=True)
class TestCaseResult:
    """The evaluation outcome of one test case."""

    __test__ = False  # not a pytest test class despite the name

    test_id: int
    attacker_distinguishable: bool
    distinguishing_atom_ids: FrozenSet[int]
    targeted_atom_id: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "test_id": self.test_id,
            "attacker_distinguishable": self.attacker_distinguishable,
            "distinguishing_atom_ids": sorted(self.distinguishing_atom_ids),
            "targeted_atom_id": self.targeted_atom_id,
        }

    @staticmethod
    def from_dict(data: dict) -> "TestCaseResult":
        return TestCaseResult(
            test_id=data["test_id"],
            attacker_distinguishable=data["attacker_distinguishable"],
            distinguishing_atom_ids=frozenset(data["distinguishing_atom_ids"]),
            targeted_atom_id=data.get("targeted_atom_id"),
        )


class EvaluationDataset:
    """An ordered collection of test-case results."""

    def __init__(
        self,
        results: Sequence[TestCaseResult],
        core_name: str = "",
        template_name: str = "",
        attacker_name: str = "",
    ):
        self.results: List[TestCaseResult] = list(results)
        self.core_name = core_name
        self.template_name = template_name
        self.attacker_name = attacker_name

    # -- collection protocol ------------------------------------------

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[TestCaseResult]:
        return iter(self.results)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return EvaluationDataset(
                self.results[index],
                core_name=self.core_name,
                template_name=self.template_name,
                attacker_name=self.attacker_name,
            )
        return self.results[index]

    def prefix(self, count: int) -> "EvaluationDataset":
        """The first ``count`` results — the synthesis-set sweeps of
        Fig. 2 and Fig. 3 synthesize from growing prefixes."""
        return self[:count]

    def extend(self, results: Iterable[TestCaseResult]) -> None:
        self.results.extend(results)

    # -- views ---------------------------------------------------------

    @property
    def distinguishable(self) -> List[TestCaseResult]:
        """``Dist``: attacker-distinguishable test cases."""
        return [result for result in self.results if result.attacker_distinguishable]

    @property
    def indistinguishable(self) -> List[TestCaseResult]:
        """``Indist = TC \\ Dist``."""
        return [
            result for result in self.results if not result.attacker_distinguishable
        ]

    # -- serialization --------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "core": self.core_name,
                "template": self.template_name,
                "attacker": self.attacker_name,
                "results": [result.to_dict() for result in self.results],
            }
        )

    @staticmethod
    def from_json(text: str) -> "EvaluationDataset":
        data = json.loads(text)
        return EvaluationDataset(
            [TestCaseResult.from_dict(entry) for entry in data["results"]],
            core_name=data.get("core", ""),
            template_name=data.get("template", ""),
            attacker_name=data.get("attacker", ""),
        )

    def save(self, path: str) -> None:
        with open(path, "w") as stream:
            stream.write(self.to_json())

    @staticmethod
    def load(path: str) -> "EvaluationDataset":
        with open(path) as stream:
            return EvaluationDataset.from_json(stream.read())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "EvaluationDataset(%d cases, %d distinguishable, core=%s)" % (
            len(self.results),
            len(self.distinguishable),
            self.core_name or "?",
        )
