"""The fast-path axis: how test-case evaluation is executed.

Historically ``use_fastpath`` was a boolean (compiled vs. reference
extraction).  The batched engine adds a third point, so the axis is
now a named mode — one user-visible choice listed by ``repro list``
and selectable through ``SynthesisPipeline.fastpath()`` and the CLI
``--fastpath`` flag:

``"reference"`` (``False``)
    Scalar simulation + closure-based reference extraction.  The
    oracle everything else is pinned against.
``"compiled"`` (``True``)
    Scalar simulation + columnar compiled extraction (PR 1).
``"batch"``
    Batched columnar simulation *and* extraction
    (:mod:`repro.batchsim`), falling back to ``"compiled"`` behaviour
    per evaluator when the core/attacker/environment cannot batch.

All three produce byte-identical datasets; identity keys (checkpoints,
campaign cells, service job ids) therefore alias ``"batch"`` with
``"compiled"`` via :func:`fastpath_key`.
"""

from __future__ import annotations

from typing import Union

from repro.registry import Registry

#: Canonical internal values: ``False`` | ``True`` | ``"batch"``.
FastpathMode = Union[bool, str]

#: The user-visible mode axis (``repro list`` renders this).
FASTPATH_REGISTRY = Registry("fastpath-mode", "evaluation fast-path modes")
FASTPATH_REGISTRY.register(
    "reference",
    lambda: False,
    description="scalar simulation + reference closure extraction (oracle)",
)
FASTPATH_REGISTRY.register(
    "compiled",
    lambda: True,
    description="scalar simulation + columnar compiled extraction (default)",
)
FASTPATH_REGISTRY.register(
    "batch",
    lambda: "batch",
    description="batched columnar simulation + extraction (fastest)",
)


def normalize_fastpath(mode: FastpathMode) -> FastpathMode:
    """Canonicalize a fast-path selection.

    Accepts the legacy booleans and the registry names; returns the
    canonical ``False`` / ``True`` / ``"batch"`` value.
    """
    if mode is False or mode == "reference":
        return False
    if mode is True or mode == "compiled":
        return True
    if mode == "batch":
        return "batch"
    raise ValueError(
        "unknown fastpath mode %r (choose from: %s)"
        % (mode, ", ".join(FASTPATH_REGISTRY.names()))
    )


def fastpath_key(mode: FastpathMode) -> bool:
    """The identity-key projection of a fast-path mode.

    Every mode with a truthy value produces byte-identical datasets, so
    checkpoint keys, campaign-cell identities, and service job ids must
    not split on compiled-vs-batch — only on reference-vs-fast.
    """
    return bool(normalize_fastpath(mode))
