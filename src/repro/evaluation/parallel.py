"""Multi-process test-case evaluation.

The paper evaluates test cases on up to 128 threads; this module
provides the equivalent fan-out for the Python substrate.  Workers are
initialized once with the core factory and template parameters
(rebuilding the 892-atom template per task would dominate), generate
their own test-case shards deterministically from the shared seed, and
stream back plain result tuples.

Determinism: the combined dataset equals the sequential
``TestCaseEvaluator.evaluate_many`` output for the same seed, because
test cases are generated per test id (the generator derives a child
RNG from ``(seed, test_id)``), not from a shared stream.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Tuple

from repro.contracts.riscv_template import build_riscv_template
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.evaluation.results import EvaluationDataset, TestCaseResult
from repro.testgen.generator import GeneratorConfig, TestCaseGenerator

_worker_state = {}


def _initialize_worker(
    core_name: str,
    seed: int,
    max_distance: int,
    use_fastpath: bool = True,
    template_name: Optional[str] = None,
    attacker_name: Optional[str] = None,
) -> None:
    from repro.attacker import ATTACKER_REGISTRY
    from repro.contracts.riscv_template import TEMPLATE_REGISTRY
    from repro.uarch import CORE_REGISTRY

    if template_name is None:
        template = build_riscv_template(max_distance=max_distance)
    else:
        template = TEMPLATE_REGISTRY.create(template_name)
    attacker = (
        ATTACKER_REGISTRY.create(attacker_name) if attacker_name is not None else None
    )
    _worker_state["generator"] = TestCaseGenerator(template, seed=seed)
    _worker_state["evaluator"] = TestCaseEvaluator(
        CORE_REGISTRY.create(core_name),
        template,
        attacker=attacker,
        use_fastpath=use_fastpath,
    )


def _evaluate_shard(shard: Tuple[int, int]) -> List[tuple]:
    start, count = shard
    generator: TestCaseGenerator = _worker_state["generator"]
    evaluator: TestCaseEvaluator = _worker_state["evaluator"]
    results = []
    for test_case in generator.iter_generate(count, start_id=start):
        result = evaluator.evaluate(test_case)
        results.append(
            (
                result.test_id,
                result.attacker_distinguishable,
                tuple(sorted(result.distinguishing_atom_ids)),
                result.targeted_atom_id,
            )
        )
    return results


def evaluate_parallel(
    core_name: str,
    count: int,
    seed: int,
    processes: Optional[int] = None,
    shard_size: int = 250,
    max_distance: int = 4,
    use_fastpath: bool = True,
    template_name: Optional[str] = None,
    attacker_name: Optional[str] = None,
) -> EvaluationDataset:
    """Evaluate ``count`` generated test cases on ``core_name`` using a
    process pool.  Equivalent to the sequential evaluator for the same
    ``seed`` (results ordered by test id).

    Shards are streamed with ``imap_unordered`` — workers never idle
    waiting for a slow sibling shard, and the final sort by test id
    restores the deterministic order — with the chunk size tuned so
    each worker receives a handful of batches (pipelining against
    stragglers without per-shard IPC overhead).

    ``template_name`` and ``attacker_name`` are registry names resolved
    inside each worker (instances cannot cross the fork cheaply);
    ``template_name`` supersedes ``max_distance``, so passing both is
    an error.
    """
    if template_name is not None and max_distance != 4:
        raise ValueError(
            "pass either template_name or max_distance, not both: a "
            "registered template fixes its own dependency distance"
        )
    if count <= 0:
        return EvaluationDataset([], core_name=core_name)
    processes = processes or min(multiprocessing.cpu_count(), 8)
    shards = [
        (start, min(shard_size, count - start))
        for start in range(0, count, shard_size)
    ]
    if processes == 1 or len(shards) == 1:
        _initialize_worker(
            core_name, seed, max_distance, use_fastpath, template_name, attacker_name
        )
        shard_results = [_evaluate_shard(shard) for shard in shards]
    else:
        chunksize = max(1, len(shards) // (processes * 4))
        context = multiprocessing.get_context("fork")
        with context.Pool(
            processes,
            initializer=_initialize_worker,
            initargs=(
                core_name,
                seed,
                max_distance,
                use_fastpath,
                template_name,
                attacker_name,
            ),
        ) as pool:
            shard_results = list(
                pool.imap_unordered(_evaluate_shard, shards, chunksize=chunksize)
            )

    rows = [row for shard in shard_results for row in shard]
    rows.sort(key=lambda row: row[0])
    results = [
        TestCaseResult(
            test_id=test_id,
            attacker_distinguishable=distinguishable,
            distinguishing_atom_ids=frozenset(atom_ids),
            targeted_atom_id=targeted,
        )
        for test_id, distinguishable, atom_ids, targeted in rows
    ]
    return EvaluationDataset(
        results,
        core_name=core_name,
        template_name=template_name or "riscv-rv32im",
        attacker_name=attacker_name or "retirement-timing",
    )
