"""Sharded test-case evaluation over pluggable executor backends.

The paper evaluates test cases on up to 128 threads;
:func:`evaluate_parallel` provides the equivalent fan-out for the
Python substrate.  The work distribution itself is delegated to
:mod:`repro.evaluation.backends`: the shard plan is computed once,
every backend (including the serial one) consumes the *same* plan
through the *same* per-worker shard loop, and completed shards can be
checkpointed to a :class:`~repro.evaluation.backends.ShardManifest` so
interrupted or budget-extended runs resume instead of restarting.

Determinism: the combined dataset equals the sequential
``TestCaseEvaluator.evaluate_many`` output for the same seed, because
test cases are generated per test id (the generator derives a child
RNG from ``(seed, test_id)``), not from a shared stream.  This holds
for every backend and for any shard size, which is what the
executor-equivalence test suite pins down.
"""

from __future__ import annotations

import copy
import time
from typing import Callable, Optional, Union

from repro.evaluation.backends import (
    EXECUTOR_REGISTRY,
    EvaluationExecutor,
    EvaluationTask,
    ShardManifest,
    ShardProgress,
    plan_shards,
    rows_to_results,
)
from repro.evaluation.results import EvaluationDataset
from repro.resilience.quarantine import FailureLog, FailureRecord
from repro.resilience.retry import RetryPolicy
from repro.trace.tracer import Tracer

#: Optional per-shard progress callback.
ProgressCallback = Callable[[ShardProgress], None]

#: Optional failure-event callback (retries, quarantines, downgrades).
FailureCallback = Callable[[FailureRecord], None]


def evaluate_parallel(
    core_name: str,
    count: int,
    seed: int,
    processes: Optional[int] = None,
    shard_size: int = 250,
    max_distance: int = 4,
    use_fastpath: "bool | str" = True,
    template_name: Optional[str] = None,
    attacker_name: Optional[str] = None,
    executor: Union[str, EvaluationExecutor] = "multiprocess",
    manifest_path: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    generator_name: str = "random",
    generator_state: Optional[str] = None,
    start_id: int = 0,
    retry: Optional[RetryPolicy] = None,
    shard_timeout: Optional[float] = None,
    failure_log_path: Optional[str] = None,
    on_failure: Optional[FailureCallback] = None,
    tracer: Optional[Tracer] = None,
) -> EvaluationDataset:
    """Evaluate ``count`` generated test cases on ``core_name`` using
    the named executor backend.  Equivalent to the sequential evaluator
    for the same ``seed`` (results ordered by test id).

    ``executor`` is an :data:`EXECUTOR_REGISTRY` name (``"serial"``,
    ``"multiprocess"``, ``"futures"``, ``"threaded"``) or a ready-made
    :class:`EvaluationExecutor`; ``processes`` sizes the backend's
    worker pool.

    ``manifest_path`` enables shard checkpointing: completed shards are
    appended there as JSONL, shards already stored for the same task
    identity are reused instead of re-evaluated, and a manifest written
    for a *different* identity raises rather than mixing corpora.

    ``progress`` receives one :class:`ShardProgress` event per shard —
    resumed shards first, then evaluated shards as they complete.

    ``template_name`` and ``attacker_name`` are registry names resolved
    inside each worker (instances cannot cross the fork cheaply);
    ``template_name`` supersedes ``max_distance``, so passing both is
    an error.

    ``generator_name`` picks the ``GENERATOR_REGISTRY`` strategy each
    worker rebuilds, ``generator_state`` its JSON feedback snapshot;
    ``start_id`` offsets the evaluated test-id range to ``[start_id,
    start_id + count)`` — the adaptive loop evaluates round ``r`` as
    one such window.

    ``retry`` and/or ``shard_timeout`` wrap the backend in a
    :class:`~repro.resilience.ResilientExecutor`: failing shards are
    retried per the policy, hung shards past the soft deadline are
    rescheduled in a fresh pool, and shards that exhaust their
    attempts are quarantined — appended to the ``failure_log_path``
    :class:`~repro.resilience.FailureLog` and reported through
    ``on_failure`` — while the run continues without their rows.
    Retry settings never enter the task identity, so fault-tolerant
    and plain runs share manifests and produce byte-identical
    datasets.

    ``tracer``, when active, receives one ``failure`` event per
    resilience event (retries, timeouts, quarantines, downgrades) and
    one ``shard-resumed`` event per manifest-resumed shard; completed
    shard *spans* are emitted by the workers themselves through the
    process-wide tracer installed by the pipeline (fork-inherited into
    pool children).  Tracing never changes results.
    """
    if template_name is not None and max_distance != 4:
        raise ValueError(
            "pass either template_name or max_distance, not both: a "
            "registered template fixes its own dependency distance"
        )
    if count <= 0:
        return EvaluationDataset([], core_name=core_name)

    task = EvaluationTask(
        core_name=core_name,
        seed=seed,
        max_distance=max_distance,
        use_fastpath=use_fastpath,
        template_name=template_name,
        attacker_name=attacker_name,
        generator_name=generator_name,
        generator_state=generator_state,
    )
    if isinstance(executor, str):
        executor = EXECUTOR_REGISTRY.create(executor, processes=processes)
    elif processes is not None and executor.processes is None:
        # Never mutate a caller-supplied instance: size a shallow copy
        # (an instance's own explicit worker count always wins).
        executor = copy.copy(executor)
        executor.processes = processes
    if tracer is not None and tracer.active:
        # Surface resilience events on the trace stream without
        # disturbing the caller's callback.  Wrapped *before* the
        # ResilientExecutor captures on_event below.
        caller_on_failure = on_failure

        def on_failure(record: FailureRecord) -> None:
            tracer.event(
                "failure",
                failure=record.kind,
                unit=record.unit,
                error=record.error,
                attempts=record.attempts,
            )
            if caller_on_failure is not None:
                caller_on_failure(record)

    if retry is not None or shard_timeout is not None:
        # Imported here: the resilient wrapper itself builds on the
        # backend modules this package initializes.
        from repro.resilience.executor import ResilientExecutor

        failure_log = (
            FailureLog(failure_log_path, task.identity())
            if failure_log_path is not None
            else None
        )
        executor = ResilientExecutor(
            executor,
            policy=retry,
            shard_timeout=shard_timeout,
            failure_log=failure_log,
            on_event=on_failure,
        )

    shards = plan_shards(count, shard_size)
    if start_id:
        shards = [(start_id + shard_start, size) for shard_start, size in shards]
    started = time.perf_counter()

    manifest = (
        ShardManifest(manifest_path, task.identity())
        if manifest_path is not None
        else None
    )
    stored = manifest.stored(shards) if manifest is not None else {}
    pending = [shard for shard in shards if shard not in stored]

    completed_shards = 0
    completed_cases = 0
    batches = []

    def emit(shard, resumed: bool) -> None:
        nonlocal completed_shards, completed_cases
        completed_shards += 1
        completed_cases += shard[1]
        if progress is not None:
            progress(
                ShardProgress(
                    shard=shard,
                    completed_shards=completed_shards,
                    total_shards=len(shards),
                    completed_cases=completed_cases,
                    total_cases=count,
                    resumed=resumed,
                    elapsed_seconds=time.perf_counter() - started,
                )
            )

    for shard in shards:
        if shard in stored:
            batches.append(stored[shard])
            if tracer is not None and tracer.active:
                tracer.event("shard-resumed", start_id=shard[0], count=shard[1])
            emit(shard, resumed=True)
    if pending:  # a fully-resumed run never builds a worker stack
        for shard, rows in executor.run(task, pending):
            if manifest is not None:
                manifest.append(shard, rows)
            batches.append(rows)
            emit(shard, resumed=False)

    return EvaluationDataset(
        rows_to_results(batches),
        core_name=core_name,
        template_name=template_name or "riscv-rv32im",
        attacker_name=attacker_name or "retirement-timing",
    )
