"""The built-in evaluation executors.

Four backends behind one interface:

``serial``
    One :class:`ShardEvaluator` in the calling process, shards in plan
    order.  The reference backend — everything else must match it —
    and the degenerate target the pool backends fall back to for one
    worker or one shard, so there is exactly one shard loop to get
    right.

``multiprocess``
    The classic forked ``multiprocessing.Pool`` with ``imap_unordered``
    (the paper's up-to-128-thread fan-out).  Workers are initialized
    once; chunking keeps per-shard IPC overhead amortized.

``futures``
    ``concurrent.futures.ProcessPoolExecutor`` submitting one future
    per shard.  Finer-grained streaming than the chunked pool (each
    shard checkpoints the moment it completes) at slightly higher IPC
    cost — the backend to prefer when resumability matters more than
    raw throughput.

``threaded``
    ``ThreadPoolExecutor`` with one thread-local evaluation stack per
    thread.  The cores are pure Python (GIL-bound), so this backend is
    about overlap with non-Python work and about exercising the
    executor seam without fork support (e.g. constrained sandboxes).
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.evaluation.backends.base import (
    EvaluationExecutor,
    EvaluationTask,
    Row,
    Shard,
    ShardEvaluator,
)
from repro.metrics.registry import current_metrics
from repro.resilience.errors import FatalInjectedFault, ShardExecutionError
from repro.resilience.injection import maybe_inject
from repro.trace.tracer import current_tracer

#: Per-process worker state for the process-pool backends; populated by
#: the pool initializer in each forked child.
_worker_state: dict = {}


def _initialize_process(task: EvaluationTask) -> None:
    _worker_state["worker"] = ShardEvaluator(task)


def _evaluate_shard(worker: ShardEvaluator, shard: Shard) -> Tuple[Shard, List[Row]]:
    """The one shard-evaluation call every backend funnels through.

    Hosts the ``"shard"`` fault-injection seam, the shard trace span
    (the process-wide tracer is fork-inherited from the parent that
    installed it, so pool workers append to the same trace file), and
    wraps any worker error in a :class:`ShardExecutionError` naming
    ``(start_id, count)`` — a bare exception crossing a pool boundary
    would otherwise carry no clue which shard died.
    """
    tracer = current_tracer()
    if tracer.path is None:
        return _evaluate_shard_inner(worker, shard)
    try:
        with tracer.span("shard", start_id=shard[0], count=shard[1]):
            return _evaluate_shard_inner(worker, shard)
    finally:
        # Pool workers inherit the installed registry by fork; a
        # periodic snapshot per shard bounds how much of a long sweep's
        # telemetry a dying worker can take with it.
        current_metrics().maybe_flush()


def _evaluate_shard_inner(
    worker: ShardEvaluator, shard: Shard
) -> Tuple[Shard, List[Row]]:
    try:
        maybe_inject("shard", shard=shard)
        return shard, worker.evaluate(shard)
    except ShardExecutionError:
        raise
    except FatalInjectedFault as error:
        raise ShardExecutionError(shard, cause=repr(error), fatal=True) from error
    except Exception as error:
        raise ShardExecutionError(shard, cause=repr(error)) from error


def _evaluate_in_process(shard: Shard) -> Tuple[Shard, List[Row]]:
    worker: ShardEvaluator = _worker_state["worker"]
    return _evaluate_shard(worker, shard)


def _default_processes(requested: Optional[int]) -> int:
    return requested or min(multiprocessing.cpu_count(), 8)


class SerialExecutor(EvaluationExecutor):
    """In-process evaluation, shards in plan order (the reference)."""

    name = "serial"

    def run(
        self, task: EvaluationTask, shards: Sequence[Shard]
    ) -> Iterator[Tuple[Shard, List[Row]]]:
        worker = ShardEvaluator(task)
        for shard in shards:
            yield _evaluate_shard(worker, shard)


class MultiprocessExecutor(EvaluationExecutor):
    """Forked worker pool streaming shards with ``imap_unordered``."""

    name = "multiprocess"

    def run(
        self, task: EvaluationTask, shards: Sequence[Shard]
    ) -> Iterator[Tuple[Shard, List[Row]]]:
        processes = _default_processes(self.processes)
        if processes == 1 or len(shards) <= 1:
            # One worker (or one shard) degenerates to the serial
            # backend — the *same* shard loop, not a parallel
            # reimplementation that could drift.
            yield from SerialExecutor().run(task, shards)
            return
        chunksize = max(1, len(shards) // (processes * 4))
        context = multiprocessing.get_context("fork")
        with context.Pool(
            processes,
            initializer=_initialize_process,
            initargs=(task,),
        ) as pool:
            for shard, rows in pool.imap_unordered(
                _evaluate_in_process, shards, chunksize=chunksize
            ):
                yield shard, rows


class FuturesExecutor(EvaluationExecutor):
    """Process-pool futures, one per shard, yielded as completed."""

    name = "futures"

    def run(
        self, task: EvaluationTask, shards: Sequence[Shard]
    ) -> Iterator[Tuple[Shard, List[Row]]]:
        processes = _default_processes(self.processes)
        if processes == 1 or len(shards) <= 1:
            yield from SerialExecutor().run(task, shards)
            return
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=processes,
            mp_context=context,
            initializer=_initialize_process,
            initargs=(task,),
        ) as executor:
            futures = []
            for shard in shards:
                futures.append(executor.submit(_evaluate_in_process, shard))
            for future in as_completed(futures):
                yield future.result()


class ThreadedExecutor(EvaluationExecutor):
    """Thread pool with one thread-local evaluation stack per thread.

    Cores and evaluators are stateful (simulation mutates them), so
    threads must never share one — each thread lazily builds its own.
    """

    name = "threaded"

    def run(
        self, task: EvaluationTask, shards: Sequence[Shard]
    ) -> Iterator[Tuple[Shard, List[Row]]]:
        state = threading.local()

        def evaluate(shard: Shard) -> Tuple[Shard, List[Row]]:
            worker = getattr(state, "worker", None)
            if worker is None:
                worker = state.worker = ShardEvaluator(task)
            return _evaluate_shard(worker, shard)

        workers = _default_processes(self.processes)
        if workers == 1 or len(shards) <= 1:
            yield from SerialExecutor().run(task, shards)
            return
        with ThreadPoolExecutor(max_workers=workers) as executor:
            futures = [executor.submit(evaluate, shard) for shard in shards]
            for future in as_completed(futures):
                yield future.result()
