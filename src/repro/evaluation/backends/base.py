"""Executor interface: shard descriptors in, result batches out.

An :class:`EvaluationExecutor` consumes a fixed *shard plan* — a list
of ``(start_id, count)`` descriptors covering the test-id range — and
streams back ``(shard, rows)`` batches as shards complete, in whatever
order the backend finishes them.  Everything a worker needs to build
its own generator/evaluator pair travels as an :class:`EvaluationTask`
of plain registry names and integers, so the same task crosses process
boundaries, threads, and (later) machines unchanged.

Determinism contract: test cases are generated *per test id* (the
generator derives a child RNG from ``(seed, test_id)``), so a shard's
rows depend only on the task identity and the shard descriptor — never
on which backend ran it, which sibling shards ran, or the total
budget.  This is what makes shard-level checkpointing and resumption
(:mod:`repro.evaluation.backends.manifest`) sound.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

#: One evaluated test case, as a plain tuple that serializes cheaply:
#: ``(test_id, attacker_distinguishable, sorted_atom_ids, targeted)``.
Row = Tuple[int, bool, Tuple[int, ...], Optional[int]]

#: A shard descriptor: evaluate ``count`` test cases from ``start_id``.
Shard = Tuple[int, int]


def plan_shards(count: int, shard_size: int) -> List[Shard]:
    """The canonical shard plan covering test ids ``[0, count)``.

    Every backend — including the serial one — consumes this exact
    plan, so the tail shard (``count`` not divisible by ``shard_size``)
    and the single-process path cannot drift from the pool path.
    """
    if shard_size <= 0:
        raise ValueError("shard_size must be positive")
    shards = []
    for start in range(0, count, shard_size):
        shards.append((start, min(shard_size, count - start)))
    return shards


@dataclass(frozen=True)
class EvaluationTask:
    """Everything a worker needs to rebuild its evaluation stack.

    Plugins travel by registry name (instances cannot cross a process
    boundary cheaply); ``template_name`` supersedes ``max_distance``.
    The generation strategy travels as its ``GENERATOR_REGISTRY`` name
    plus a JSON snapshot of its feedback state (``None`` for the
    stateless fresh strategy), so adaptive rounds can fan out through
    the same workers as fixed-budget runs.
    """

    core_name: str
    seed: int
    max_distance: int = 4
    #: Fast-path mode: ``False`` (reference), ``True`` (compiled), or
    #: ``"batch"`` — see :mod:`repro.evaluation.fastpath`.
    use_fastpath: "bool | str" = True
    template_name: Optional[str] = None
    attacker_name: Optional[str] = None
    generator_name: str = "random"
    #: Canonical JSON of ``GenerationStrategy.state()`` (kept as a
    #: string so the task stays hashable and crosses processes cheaply).
    generator_state: Optional[str] = None

    def identity(self) -> dict:
        """The manifest key: every field that changes a shard's rows.

        The total budget is deliberately absent — shards are keyed by
        ``(start_id, count)`` and generated per test id, so a manifest
        written under a smaller budget stays valid when the budget is
        extended.  A non-default generator *is* present (different
        strategies produce different corpora from the same seed), with
        its feedback state as a short digest so steered rounds never
        alias the fresh stream; the default ``random`` strategy is
        keyed by *absence*, so manifests written before strategies
        existed (all of them random by construction) stay resumable.
        """
        key = {
            "core": self.core_name,
            "template": self.template_name or "riscv-rv32im",
            "attacker": self.attacker_name or "retirement-timing",
            "seed": self.seed,
            "max_distance": self.max_distance,
            # Compiled and batch produce byte-identical rows, so the
            # key only splits on reference-vs-fast (bool projection).
            "fastpath": bool(self.use_fastpath),
        }
        if self.generator_name != "random":
            key["generator"] = self.generator_name
        if self.generator_state is not None:
            import hashlib

            key["generator_state"] = hashlib.md5(
                self.generator_state.encode()
            ).hexdigest()[:8]
        return key


@dataclass(frozen=True)
class ShardProgress:
    """One per-shard progress event, streamed as shards complete."""

    shard: Shard
    completed_shards: int
    total_shards: int
    completed_cases: int
    total_cases: int
    #: True when the shard came from a checkpoint manifest instead of
    #: being evaluated in this run.
    resumed: bool
    elapsed_seconds: float


class ShardEvaluator:
    """The per-worker evaluation stack: generator + evaluator.

    Built once per worker (process, thread, or the caller itself) from
    an :class:`EvaluationTask`; rebuilding the multi-hundred-atom
    template per shard would dominate the run.
    """

    def __init__(self, task: EvaluationTask):
        import json

        from repro.attacker import ATTACKER_REGISTRY
        from repro.contracts.riscv_template import (
            TEMPLATE_REGISTRY,
            build_riscv_template,
        )
        from repro.evaluation.evaluator import TestCaseEvaluator
        from repro.testgen.strategies import GENERATOR_REGISTRY
        from repro.uarch import CORE_REGISTRY

        if task.template_name is None:
            template = build_riscv_template(max_distance=task.max_distance)
        else:
            template = TEMPLATE_REGISTRY.create(task.template_name)
        attacker = (
            ATTACKER_REGISTRY.create(task.attacker_name)
            if task.attacker_name is not None
            else None
        )
        self.task = task
        self.generator = GENERATOR_REGISTRY.create(
            task.generator_name, template, seed=task.seed
        )
        if task.generator_state is not None:
            self.generator.restore(json.loads(task.generator_state))
        self.evaluator = TestCaseEvaluator(
            CORE_REGISTRY.create(task.core_name),
            template,
            attacker=attacker,
            use_fastpath=task.use_fastpath,
        )

    def evaluate(self, shard: Shard) -> List[Row]:
        """Evaluate one shard into plain result rows.

        One shard is one :meth:`TestCaseEvaluator.evaluate_batch` call
        — shards are the natural batch unit of every executor, so the
        batched engine amortizes across the whole shard.
        """
        start, count = shard
        test_cases = list(self.generator.iter_generate(count, start_id=start))
        return [
            (
                result.test_id,
                result.attacker_distinguishable,
                tuple(sorted(result.distinguishing_atom_ids)),
                result.targeted_atom_id,
            )
            for result in self.evaluator.evaluate_batch(test_cases)
        ]


class EvaluationExecutor(ABC):
    """Common interface over the work-distribution backends.

    ``run`` yields ``(shard, rows)`` batches as shards complete; the
    order is backend-defined (callers sort by test id at the end).
    Executors are cheap, stateless objects — all evaluation state lives
    in per-worker :class:`ShardEvaluator` instances.
    """

    #: Registry name of the backend (``"serial"``, ``"multiprocess"``...).
    name = "abstract"
    #: True for backends that depend on infrastructure outside this
    #: process (a broker, workers) — the equivalence suites and smoke
    #: loops skip these; they pin byte-identity in their own harnesses.
    external = False

    def __init__(self, processes: Optional[int] = None):
        #: Worker count; ``None`` picks a backend-specific default.
        self.processes = processes

    @abstractmethod
    def run(
        self, task: EvaluationTask, shards: Sequence[Shard]
    ) -> Iterator[Tuple[Shard, List[Row]]]:
        """Evaluate ``shards`` under ``task``, streaming result batches."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "%s(processes=%r)" % (type(self).__name__, self.processes)


def rows_to_results(row_batches: Iterable[List[Row]]):
    """Flatten row batches into ``TestCaseResult`` objects sorted by
    test id — the deterministic dataset order every backend shares."""
    from repro.evaluation.results import TestCaseResult

    rows = [row for batch in row_batches for row in batch]
    rows.sort(key=lambda row: row[0])
    return [
        TestCaseResult(
            test_id=test_id,
            attacker_distinguishable=distinguishable,
            distinguishing_atom_ids=frozenset(atom_ids),
            targeted_atom_id=targeted,
        )
        for test_id, distinguishable, atom_ids, targeted in rows
    ]
