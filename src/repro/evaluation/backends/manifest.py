"""Shard-manifest checkpointing: append-only JSONL of completed shards.

A manifest makes an evaluation run resumable: every completed shard is
appended (and flushed) as one JSON line, so a run killed at 95% keeps
95% of its work.  The next run with the same task identity loads the
manifest, reuses every stored shard that matches its plan, and
evaluates only the missing ones.

File layout — line 1 is a header binding the file to the task identity
(core, template, attacker, seed, dependency distance, extraction
engine — the same axes as the dataset cache key); every further line
is one completed shard::

    {"manifest": "evaluation-shards", "version": 1, "key": {...}}
    {"shard": [0, 250], "rows": [[0, true, [3, 17], 3], ...]}
    {"shard": [250, 250], "rows": [...]}

Robustness rules:

- a header key mismatch raises — silently mixing two corpora in one
  checkpoint file is the stale-cache bug the dataset cache key exists
  to prevent;
- a truncated *final* line (the run died mid-append) is discarded;
  corruption anywhere else raises;
- the total budget is not part of the identity, so extending the
  budget resumes from the same manifest (shards are keyed by
  ``(start_id, count)`` and generated per test id).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.evaluation.backends.base import Row, Shard

_KIND = "evaluation-shards"
_VERSION = 1


class ManifestKeyError(ValueError):
    """The manifest on disk was written for a different task identity."""


class ShardManifest:
    """An append-only JSONL checkpoint of completed evaluation shards."""

    def __init__(self, path: str, key: dict):
        self.path = path
        self.key = key
        #: Completed shards loaded from disk, keyed by descriptor.
        self.completed: Dict[Shard, List[Row]] = {}
        if os.path.exists(path):
            self._load()
        else:
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._write_header()

    # -- persistence ---------------------------------------------------

    def _write_header(self) -> None:
        self._rewrite()

    def _load(self) -> None:
        with open(self.path) as stream:
            content = stream.read()
        lines = content.splitlines()
        if not lines:
            self._write_header()
            return
        #: A file not ending in a newline died mid-append; its final
        #: line must be dropped *and rewritten away*, otherwise the
        #: next append would concatenate onto the partial bytes and
        #: permanently corrupt the manifest.
        torn = not content.endswith("\n")
        header = self._decode(lines[0], line_number=1, final=len(lines) == 1)
        if header is None:
            # A file holding only one truncated line: start over.
            self._write_header()
            return
        if header.get("manifest") != _KIND or header.get("version") != _VERSION:
            raise ValueError(
                "%s is not a version-%d evaluation shard manifest"
                % (self.path, _VERSION)
            )
        if header.get("key") != self.key:
            raise ManifestKeyError(
                "shard manifest %s was written for a different evaluation "
                "(manifest key %r, current key %r); delete it or pass a "
                "different --resume path" % (self.path, header.get("key"), self.key)
            )
        discarded = False
        for line_number, line in enumerate(lines[1:], start=2):
            entry = self._decode(
                line, line_number=line_number, final=line_number == len(lines)
            )
            if entry is None:
                discarded = True
                continue
            shard = tuple(entry["shard"])
            self.completed[shard] = [
                (row[0], bool(row[1]), tuple(row[2]), row[3]) for row in entry["rows"]
            ]
        if discarded or torn:
            self._rewrite()

    def _rewrite(self) -> None:
        """Rewrite the file from the loaded state, dropping torn bytes
        so subsequent appends land on a clean line boundary."""
        with open(self.path, "w") as stream:
            header = {"manifest": _KIND, "version": _VERSION, "key": self.key}
            stream.write(json.dumps(header) + "\n")
            for shard, rows in self.completed.items():
                entry = {"shard": list(shard), "rows": [list(row) for row in rows]}
                stream.write(json.dumps(entry) + "\n")

    def _decode(self, line: str, line_number: int, final: bool) -> Optional[dict]:
        """One JSONL line; a corrupt *final* line (killed mid-append)
        decodes to ``None``, corruption elsewhere raises."""
        if final and not line.strip():
            return None
        try:
            return json.loads(line)
        except ValueError:
            if final:
                return None
            raise ValueError(
                "corrupt shard manifest %s: line %d is not valid JSON"
                % (self.path, line_number)
            )

    def append(self, shard: Shard, rows: Sequence[Row]) -> None:
        """Checkpoint one completed shard (flushed immediately)."""
        entry = {"shard": list(shard), "rows": [list(row) for row in rows]}
        with open(self.path, "a") as stream:
            stream.write(json.dumps(entry) + "\n")
            stream.flush()
        self.completed[shard] = list(rows)

    # -- plan intersection ---------------------------------------------

    def stored(self, shards: Sequence[Shard]) -> Dict[Shard, List[Row]]:
        """The subset of ``shards`` already completed in this manifest.

        Matching is by exact descriptor — a plan with a different
        ``shard_size`` simply reuses nothing, which is always sound.
        """
        reused = {}
        for shard in shards:
            if shard in self.completed:
                reused[shard] = self.completed[shard]
        return reused

    def __len__(self) -> int:
        return len(self.completed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ShardManifest(%s, %d shards)" % (self.path, len(self.completed))
