"""Shard-manifest checkpointing: append-only JSONL of completed shards.

A manifest makes an evaluation run resumable: every completed shard is
appended (and flushed) as one JSON line, so a run killed at 95% keeps
95% of its work.  The next run with the same task identity loads the
manifest, reuses every stored shard that matches its plan, and
evaluates only the missing ones.

File layout — line 1 is a header binding the file to the task identity
(core, template, attacker, seed, dependency distance, extraction
engine — the same axes as the dataset cache key); every further line
is one completed shard::

    {"manifest": "evaluation-shards", "version": 1, "key": {...}}
    {"shard": [0, 250], "rows": [[0, true, [3, 17], 3], ...]}
    {"shard": [250, 250], "rows": [...]}

The file mechanics (header key binding, torn-final-line recovery,
flushed appends) live in :class:`repro.checkpoint.JsonlCheckpoint`,
shared with the campaign cell manifest.  One rule is specific to this
layer: the total budget is not part of the identity, so extending the
budget resumes from the same manifest (shards are keyed by
``(start_id, count)`` and generated per test id).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.checkpoint import CheckpointKeyError, JsonlCheckpoint
from repro.evaluation.backends.base import Row, Shard


class ManifestKeyError(CheckpointKeyError):
    """The manifest on disk was written for a different task identity."""


class ShardManifest(JsonlCheckpoint):
    """An append-only JSONL checkpoint of completed evaluation shards."""

    kind = "evaluation-shards"
    description = "shard manifest"
    subject = "evaluation"
    hint = "pass a different --resume path"
    key_error = ManifestKeyError

    def __init__(self, path: str, key: dict):
        #: Completed shards loaded from disk, keyed by descriptor.
        self.completed: Dict[Shard, List[Row]] = {}
        super().__init__(path, key)

    # -- checkpoint payload --------------------------------------------

    def _accept(self, entry: dict) -> None:
        shard = tuple(entry["shard"])
        self.completed[shard] = [
            (row[0], bool(row[1]), tuple(row[2]), row[3]) for row in entry["rows"]
        ]

    def _entries(self) -> Iterable[dict]:
        for shard, rows in self.completed.items():
            yield {"shard": list(shard), "rows": [list(row) for row in rows]}

    def append(self, shard: Shard, rows: Sequence[Row]) -> None:
        """Checkpoint one completed shard (flushed immediately)."""
        self._append({"shard": list(shard), "rows": [list(row) for row in rows]})
        self.completed[shard] = list(rows)

    # -- plan intersection ---------------------------------------------

    def stored(self, shards: Sequence[Shard]) -> Dict[Shard, List[Row]]:
        """The subset of ``shards`` already completed in this manifest.

        Matching is by exact descriptor — a plan with a different
        ``shard_size`` simply reuses nothing, which is always sound.
        """
        reused = {}
        for shard in shards:
            if shard in self.completed:
                reused[shard] = self.completed[shard]
        return reused

    def __len__(self) -> int:
        return len(self.completed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ShardManifest(%s, %d shards)" % (self.path, len(self.completed))
