"""``repro.evaluation.backends`` — pluggable work-distribution layers.

The paper fans test-case evaluation out to up to 128 threads; this
package is the seam that fan-out plugs into.  An
:class:`EvaluationExecutor` consumes shard descriptors ``(start_id,
count)`` and streams back result batches; :data:`EXECUTOR_REGISTRY`
maps names to backends exactly like the core/attacker/solver
registries, so new distribution strategies (async, distributed) are
one ``register`` call, never a fork of :func:`evaluate_parallel` or
the drivers::

    from repro.evaluation.backends import EXECUTOR_REGISTRY
    EXECUTOR_REGISTRY.register("my-cluster", MyClusterExecutor,
                               description="...")

after which ``SynthesisPipeline().executor("my-cluster")`` and
``repro-synthesize run --executor my-cluster`` accept it.

Shard-manifest checkpointing (:class:`ShardManifest`) rides on the
same seam: completed shards are appended to a JSONL file keyed by the
task identity, so interrupted or budget-extended runs resume by
evaluating only the missing shards.
"""

from repro.evaluation.backends.base import (
    EvaluationExecutor,
    EvaluationTask,
    Row,
    Shard,
    ShardEvaluator,
    ShardProgress,
    plan_shards,
    rows_to_results,
)
from repro.evaluation.backends.executors import (
    FuturesExecutor,
    MultiprocessExecutor,
    SerialExecutor,
    ThreadedExecutor,
)
from repro.evaluation.backends.manifest import ManifestKeyError, ShardManifest
from repro.registry import Registry

#: Every registered evaluation executor, keyed by backend name.
EXECUTOR_REGISTRY = Registry(
    "executor", description="evaluation work-distribution backends"
)
EXECUTOR_REGISTRY.register(
    "serial",
    SerialExecutor,
    description="in-process reference backend (shards in plan order)",
)
EXECUTOR_REGISTRY.register(
    "multiprocess",
    MultiprocessExecutor,
    description="forked worker pool with streamed, chunked shards",
)
EXECUTOR_REGISTRY.register(
    "futures",
    FuturesExecutor,
    description="process-pool futures, one per shard (finest checkpoints)",
)
EXECUTOR_REGISTRY.register(
    "threaded",
    ThreadedExecutor,
    description="thread pool with thread-local evaluation stacks",
)


def _workqueue_factory(*args, **kwargs):
    # Imported at call time: repro.service builds on the pipeline and
    # campaign layers, which import this package — a module-level
    # import would cycle.
    from repro.service.workqueue import WorkQueueExecutor

    return WorkQueueExecutor(*args, **kwargs)


#: The workqueue backend runs on external worker processes — see
#: :attr:`EvaluationExecutor.external` for what the flag gates.
_workqueue_factory.external = True

EXECUTOR_REGISTRY.register(
    "workqueue",
    _workqueue_factory,
    description=(
        "distributed filesystem work queue drained by `repro-synthesize "
        "service worker` processes (broker: serve/--queue-dir)"
    ),
)

__all__ = [
    "EXECUTOR_REGISTRY",
    "EvaluationExecutor",
    "EvaluationTask",
    "FuturesExecutor",
    "ManifestKeyError",
    "MultiprocessExecutor",
    "Row",
    "SerialExecutor",
    "Shard",
    "ShardEvaluator",
    "ShardManifest",
    "ShardProgress",
    "ThreadedExecutor",
    "plan_shards",
    "rows_to_results",
]
