"""Test-case evaluation (§III-C).

For every test case, determine (1) whether it is attacker
distinguishable on the target core, and (2) which contract atoms
distinguish it at the ISA level.
"""

from repro.evaluation.results import EvaluationDataset, TestCaseResult
from repro.evaluation.evaluator import TestCaseEvaluator

__all__ = ["EvaluationDataset", "TestCaseEvaluator", "TestCaseResult"]
