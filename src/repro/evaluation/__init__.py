"""Test-case evaluation (§III-C).

For every test case, determine (1) whether it is attacker
distinguishable on the target core, and (2) which contract atoms
distinguish it at the ISA level.

Scaling out lives in :mod:`repro.evaluation.backends` (the
:data:`EXECUTOR_REGISTRY` of work-distribution backends and the
shard-manifest checkpoint format) and :mod:`repro.evaluation.parallel`
(the sharded front end over them).
"""

from repro.evaluation.backends import EXECUTOR_REGISTRY
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.evaluation.parallel import evaluate_parallel
from repro.evaluation.results import EvaluationDataset, TestCaseResult

__all__ = [
    "EXECUTOR_REGISTRY",
    "EvaluationDataset",
    "TestCaseEvaluator",
    "TestCaseResult",
    "evaluate_parallel",
]
