"""The test-case evaluator (§III-C, §IV-C, §IV-D).

Both programs of a test case are simulated on the target core;
attacker distinguishability is decided from the attacker's view of the
two executions (for the paper's model: the retirement-cycle
sequences), and the distinguishing atoms are computed from the
architectural traces extracted from the RVFI records — piggybacking on
the same simulation, as the paper does.

**Batch-first API.**  :meth:`TestCaseEvaluator.evaluate_batch` is the
primary surface: under the ``"batch"`` fast-path mode a whole batch of
test cases is decoded into columnar arrays and simulated lock-step
(:mod:`repro.batchsim`), amortizing interpreter dispatch across lanes.
:meth:`evaluate` and :meth:`evaluate_many` remain as thin delegating
wrappers for per-case callers.

The evaluator keeps wall-clock accumulators for the simulation and
extraction phases; Table III is reproduced from these.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence

from repro import batchsim
from repro.attacker.base import Attacker
from repro.attacker.retirement import RetirementTimingAttacker
from repro.contracts.compiled import compile_template
from repro.contracts.observations import distinguishing_atoms_reference
from repro.contracts.template import ContractTemplate
from repro.evaluation.fastpath import FastpathMode, normalize_fastpath
from repro.evaluation.results import EvaluationDataset, TestCaseResult
from repro.testgen.testcase import TestCase
from repro.uarch.core import Core

#: Batch chunk used by :meth:`evaluate_many` when no progress cadence
#: dictates one.
DEFAULT_BATCH_SIZE = 256


class TestCaseEvaluator:
    """Evaluates test cases on one core against one template."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        core: Core,
        template: ContractTemplate,
        attacker: Optional[Attacker] = None,
        use_fastpath: FastpathMode = True,
    ):
        self.core = core
        self.template = template
        self.attacker = attacker if attacker is not None else RetirementTimingAttacker()
        mode = normalize_fastpath(use_fastpath)
        self.fastpath_mode = mode
        self._compiled = compile_template(template) if mode else None
        #: Whether batched simulation actually applies here: the mode
        #: asks for it, the core has a batched timing model, and the
        #: attacker observes what the zero-copy views carry.
        self._batch_engine = (
            mode == "batch"
            and batchsim.supports_core(core)
            and self.attacker.name in batchsim.BATCH_SAFE_ATTACKERS
        )
        self.simulation_seconds = 0.0
        self.extraction_seconds = 0.0
        self.simulated_test_cases = 0

    @property
    def use_fastpath(self) -> bool:
        """Whether extraction runs through the compiled engine."""
        return self._compiled is not None

    def reset_timers(self) -> None:
        self.simulation_seconds = 0.0
        self.extraction_seconds = 0.0
        self.simulated_test_cases = 0

    # ------------------------------------------------------------------
    # Primary surface: batches

    def evaluate_batch(
        self, test_cases: Sequence[TestCase]
    ) -> List[TestCaseResult]:
        """Evaluate a batch of test cases (the primary entry point).

        Results are returned in input order and are byte-identical per
        test id whichever fast-path mode is active.
        """
        if self._batch_engine and test_cases:
            return self._evaluate_columnar(test_cases)
        return [self._evaluate_single(test_case) for test_case in test_cases]

    def _evaluate_columnar(
        self, test_cases: Sequence[TestCase]
    ) -> List[TestCaseResult]:
        """Batched path: one columnar run for all 2N executions."""
        count = len(test_cases)
        start = time.perf_counter()
        programs = [case.program_a for case in test_cases]
        programs += [case.program_b for case in test_cases]
        states = [case.initial_state for case in test_cases] * 2
        simulation = batchsim.run_batch(self.core, programs, states)
        distinguishable = [
            self.attacker.distinguishes(
                simulation.view(index), simulation.view(index + count)
            )
            for index in range(count)
        ]
        after_simulation = time.perf_counter()
        atom_sets = batchsim.batch_distinguishing_atoms(
            self._compiled, simulation.execution, count
        )
        after_extraction = time.perf_counter()

        self.simulation_seconds += after_simulation - start
        self.extraction_seconds += after_extraction - after_simulation
        self.simulated_test_cases += count
        return [
            TestCaseResult(
                test_id=case.test_id,
                attacker_distinguishable=distinguishable[index],
                distinguishing_atom_ids=atom_sets[index],
                targeted_atom_id=case.targeted_atom_id,
            )
            for index, case in enumerate(test_cases)
        ]

    def _evaluate_single(self, test_case: TestCase) -> TestCaseResult:
        """Scalar path: two simulations + per-pair extraction."""
        start = time.perf_counter()
        result_a = self.core.simulate(test_case.program_a, test_case.initial_state)
        result_b = self.core.simulate(test_case.program_b, test_case.initial_state)
        attacker_distinguishable = self.attacker.distinguishes(result_a, result_b)
        after_simulation = time.perf_counter()

        if self._compiled is not None:
            atom_ids = self._compiled.distinguishing_atoms(
                result_a.trace.exec_records,
                result_b.trace.exec_records,
            )
        else:
            atom_ids = distinguishing_atoms_reference(
                self.template,
                result_a.trace.exec_records,
                result_b.trace.exec_records,
            )
        after_extraction = time.perf_counter()

        self.simulation_seconds += after_simulation - start
        self.extraction_seconds += after_extraction - after_simulation
        self.simulated_test_cases += 1
        return TestCaseResult(
            test_id=test_case.test_id,
            attacker_distinguishable=attacker_distinguishable,
            distinguishing_atom_ids=atom_ids,
            targeted_atom_id=test_case.targeted_atom_id,
        )

    # ------------------------------------------------------------------
    # Delegating wrappers (kept for per-case callers; prefer
    # evaluate_batch in new code)

    def evaluate(self, test_case: TestCase) -> TestCaseResult:
        """Evaluate one test case.

        Thin wrapper over :meth:`evaluate_batch`; per-case callers keep
        working, but batch-sized callers should pass whole batches.
        """
        return self.evaluate_batch([test_case])[0]

    def evaluate_many(
        self,
        test_cases: Iterable[TestCase],
        progress_every: Optional[int] = None,
    ) -> EvaluationDataset:
        """Evaluate a stream of test cases into a dataset.

        Thin wrapper over :meth:`evaluate_batch`: the stream is chunked
        (at the progress cadence when one is given) so the batched
        engine sees full batches while progress reporting stays exact.
        """
        chunk_size = progress_every or DEFAULT_BATCH_SIZE
        results: List[TestCaseResult] = []
        pending: List[TestCase] = []
        count = 0

        def flush() -> None:
            nonlocal count
            for result in self.evaluate_batch(pending):
                results.append(result)
                count += 1
                if progress_every and count % progress_every == 0:
                    print(
                        "evaluated %d test cases (%d distinguishable)"
                        % (
                            count,
                            sum(
                                1 for r in results if r.attacker_distinguishable
                            ),
                        )
                    )
            pending.clear()

        for test_case in test_cases:
            pending.append(test_case)
            if len(pending) >= chunk_size:
                flush()
        if pending:
            flush()
        return EvaluationDataset(
            results,
            core_name=self.core.name,
            template_name=self.template.name,
            attacker_name=self.attacker.name,
        )
