"""The test-case evaluator (§III-C, §IV-C, §IV-D).

Both programs of a test case are simulated on the target core;
attacker distinguishability is decided from the attacker's view of the
two executions (for the paper's model: the retirement-cycle
sequences), and the distinguishing atoms are computed from the
architectural traces extracted from the RVFI records — piggybacking on
the same simulation, as the paper does.

The evaluator keeps wall-clock accumulators for the simulation and
extraction phases; Table III is reproduced from these.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional

from repro.attacker.base import Attacker
from repro.attacker.retirement import RetirementTimingAttacker
from repro.contracts.compiled import compile_template
from repro.contracts.observations import distinguishing_atoms_reference
from repro.contracts.template import ContractTemplate
from repro.evaluation.results import EvaluationDataset, TestCaseResult
from repro.testgen.testcase import TestCase
from repro.uarch.core import Core


class TestCaseEvaluator:
    """Evaluates test cases on one core against one template."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        core: Core,
        template: ContractTemplate,
        attacker: Optional[Attacker] = None,
        use_fastpath: bool = True,
    ):
        self.core = core
        self.template = template
        self.attacker = attacker if attacker is not None else RetirementTimingAttacker()
        self._compiled = compile_template(template) if use_fastpath else None
        self.simulation_seconds = 0.0
        self.extraction_seconds = 0.0
        self.simulated_test_cases = 0

    @property
    def use_fastpath(self) -> bool:
        """Whether extraction runs through the compiled engine."""
        return self._compiled is not None

    def reset_timers(self) -> None:
        self.simulation_seconds = 0.0
        self.extraction_seconds = 0.0
        self.simulated_test_cases = 0

    def evaluate(self, test_case: TestCase) -> TestCaseResult:
        """Evaluate one test case."""
        start = time.perf_counter()
        result_a = self.core.simulate(test_case.program_a, test_case.initial_state)
        result_b = self.core.simulate(test_case.program_b, test_case.initial_state)
        attacker_distinguishable = self.attacker.distinguishes(result_a, result_b)
        after_simulation = time.perf_counter()

        if self._compiled is not None:
            atom_ids = self._compiled.distinguishing_atoms(
                result_a.trace.exec_records,
                result_b.trace.exec_records,
            )
        else:
            atom_ids = distinguishing_atoms_reference(
                self.template,
                result_a.trace.exec_records,
                result_b.trace.exec_records,
            )
        after_extraction = time.perf_counter()

        self.simulation_seconds += after_simulation - start
        self.extraction_seconds += after_extraction - after_simulation
        self.simulated_test_cases += 1
        return TestCaseResult(
            test_id=test_case.test_id,
            attacker_distinguishable=attacker_distinguishable,
            distinguishing_atom_ids=atom_ids,
            targeted_atom_id=test_case.targeted_atom_id,
        )

    def evaluate_many(
        self,
        test_cases: Iterable[TestCase],
        progress_every: Optional[int] = None,
    ) -> EvaluationDataset:
        """Evaluate a stream of test cases into a dataset."""
        results = []
        for count, test_case in enumerate(test_cases, start=1):
            results.append(self.evaluate(test_case))
            if progress_every and count % progress_every == 0:
                print(
                    "evaluated %d test cases (%d distinguishable)"
                    % (count, sum(1 for r in results if r.attacker_distinguishable))
                )
        return EvaluationDataset(
            results,
            core_name=self.core.name,
            template_name=self.template.name,
            attacker_name=self.attacker.name,
        )
