"""The request front-end: ``request(spec) -> ServiceTicket``.

:class:`ContractService` answers contract requests from the
:class:`~repro.service.store.ContractStore` when it can and schedules
campaign cells when it cannot:

- every requested cell already stored → the ticket returns instantly
  with zero cells executed;
- missing cells expand to a :class:`~repro.campaign.CampaignSpec`
  (stored cells excluded) executed through
  :class:`~repro.campaign.CampaignRunner` — on the ``workqueue``
  executor when the service was built with one, so evaluation fans out
  to whatever workers are draining the queue — and the finished
  outcomes are stored before the ticket is issued;
- a request whose budget is *smaller* than a stored sibling's schedules
  the cell but evaluates nothing: the runner's prefix-derivation serves
  the dataset from the store's cache, so ``jobs_enqueued`` stays zero.

:class:`ContractServer` is the file-based front-end behind the
``serve`` / ``submit`` / ``status`` CLI: requests are JSON files
dropped into ``<root>/requests/pending/``, the serve loop executes
them through a :class:`ContractService`, and tickets land in
``requests/done/`` (failures in ``requests/failed/``) — the same
no-daemon filesystem transport as the job queue.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.result import CellOutcome
from repro.evaluation.backends.base import EvaluationExecutor
from repro.reporting.tables import render_comparison_table
from repro.service.store import ContractStore
from repro.trace import Tracer

#: Request axes accept one value or a list of values.
Scalar = Union[str, int, None]


def _as_list(value) -> list:
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


@dataclass(frozen=True)
class ContractRequest:
    """One contract request: the dataset/synthesis axes, scalar or list.

    A scalar on every axis asks for one contract; lists expand to the
    cross product (a grid request), exactly like a campaign spec.
    """

    core: Union[str, Sequence[str]] = "ibex"
    attacker: Union[str, Sequence[str]] = "retirement-timing"
    template: Union[str, Sequence[str]] = "riscv-rv32im"
    restriction: Union[Optional[str], Sequence[Optional[str]]] = None
    solver: Union[str, Sequence[str]] = "scipy-milp"
    generator: Union[str, Sequence[str]] = "random"
    budget: Union[int, Sequence[int]] = 1000
    seed: Union[int, Sequence[int]] = 0
    #: Verification budget per cell (``None`` → dataset check).
    verify: Optional[int] = None
    fastpath: bool = True

    def to_dict(self) -> dict:
        return {
            "core": _as_list(self.core),
            "attacker": _as_list(self.attacker),
            "template": _as_list(self.template),
            "restriction": _as_list(self.restriction),
            "solver": _as_list(self.solver),
            "generator": _as_list(self.generator),
            "budget": _as_list(self.budget),
            "seed": _as_list(self.seed),
            "verify": self.verify,
            "fastpath": self.fastpath,
        }

    @staticmethod
    def from_dict(data: dict) -> "ContractRequest":
        return ContractRequest(
            core=data.get("core", "ibex"),
            attacker=data.get("attacker", "retirement-timing"),
            template=data.get("template", "riscv-rv32im"),
            restriction=data.get("restriction"),
            solver=data.get("solver", "scipy-milp"),
            generator=data.get("generator", "random"),
            budget=data.get("budget", 1000),
            seed=data.get("seed", 0),
            verify=data.get("verify"),
            fastpath=data.get("fastpath", True),
        )

    def digest(self) -> str:
        """The request id: a digest of the normalized axes, so the same
        request resubmitted maps to the same ticket."""
        body = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.md5(body.encode("utf-8")).hexdigest()[:12]

    def spec(self, name: Optional[str] = None) -> CampaignSpec:
        """The request as a campaign spec (cells validated on expand)."""
        return CampaignSpec(
            name=name or "request-%s" % self.digest(),
            cores=_as_list(self.core),
            attackers=_as_list(self.attacker),
            templates=_as_list(self.template),
            restrictions=_as_list(self.restriction),
            solvers=_as_list(self.solver),
            generators=_as_list(self.generator),
            budgets=_as_list(self.budget),
            seeds=_as_list(self.seed),
            verify=self.verify,
            fastpath=self.fastpath,
        )

    def cells(self) -> List[CampaignCell]:
        return self.spec().expand()


@dataclass
class ServiceTicket:
    """The answer to one request: every outcome plus how it was served."""

    request_id: str
    outcomes: List[CellOutcome]
    #: Cells answered straight from the contract store.
    from_store: int = 0
    #: Cells executed (scheduled as campaign cells) for this ticket.
    executed: int = 0
    #: Evaluation shard jobs newly enqueued on the work queue (zero
    #: when every dataset came from the store's cache — including by
    #: prefix-derivation from a larger cached budget).
    jobs_enqueued: int = 0
    total_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "request": self.request_id,
            "from_store": self.from_store,
            "executed": self.executed,
            "jobs_enqueued": self.jobs_enqueued,
            "total_seconds": self.total_seconds,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }

    @staticmethod
    def from_dict(data: dict) -> "ServiceTicket":
        return ServiceTicket(
            request_id=data["request"],
            outcomes=[
                CellOutcome.from_dict(entry) for entry in data.get("outcomes", [])
            ],
            from_store=data.get("from_store", 0),
            executed=data.get("executed", 0),
            jobs_enqueued=data.get("jobs_enqueued", 0),
            total_seconds=data.get("total_seconds", 0.0),
        )

    def render(self) -> str:
        rows = []
        for outcome in self.outcomes:
            rows.append(
                [
                    outcome.cell.label(),
                    str(outcome.atom_count),
                    str(outcome.false_positives),
                    "store" if outcome.resumed else "executed",
                ]
            )
        table = render_comparison_table(
            ["cell", "atoms", "FPs", "served from"],
            rows,
            title="Ticket %s: %d contract(s) — %d from store, %d executed, "
            "%d jobs enqueued (%.3fs)"
            % (
                self.request_id,
                len(self.outcomes),
                self.from_store,
                self.executed,
                self.jobs_enqueued,
                self.total_seconds,
            ),
        )
        return table


class ContractService:
    """Serve contract requests from the store, scheduling misses."""

    def __init__(
        self,
        store: ContractStore,
        executor: Union[None, str, EvaluationExecutor] = None,
        process_budget: Optional[int] = None,
        shard_size: Optional[int] = None,
        max_parallel_cells: int = 1,
        tracer: Optional[Tracer] = None,
    ):
        self.store = store
        #: Executor for scheduled cells: ``None`` → in-process serial,
        #: a registry name, or an instance (a
        #: :class:`~repro.service.WorkQueueExecutor` for the
        #: distributed service).
        self.executor = executor if executor is not None else "serial"
        self.process_budget = process_budget
        self.shard_size = shard_size
        self.max_parallel_cells = max_parallel_cells
        self.tracer = (tracer or Tracer(None)).child("service")

    def request(self, request: ContractRequest) -> ServiceTicket:
        """Answer one request, executing only what the store lacks."""
        started = time.perf_counter()
        request_id = request.digest()
        spec = request.spec()
        cells = spec.expand()
        self.store.reload()
        stored = self.store.get_all(cells)
        pending = [cell for cell in cells if cell.key() not in stored]
        self.tracer.event(
            "request",
            request=request_id,
            cells=len(cells),
            from_store=len(stored),
            scheduled=len(pending),
        )
        from repro.metrics.registry import current_metrics

        metrics = current_metrics()
        metrics.counter("service.requests").inc()
        metrics.counter("service.cells.from_store").inc(len(stored))
        metrics.counter("service.cells.scheduled").inc(len(pending))
        enqueued_before = self._jobs_enqueued()
        executed: Dict[str, CellOutcome] = {}
        if pending:
            with self.tracer.span("campaign", request=request_id, cells=len(pending)):
                executed = self._execute(spec, stored)
        outcomes = []
        for cell in cells:
            key = cell.key()
            outcomes.append(stored[key] if key in stored else executed[key])
        ticket = ServiceTicket(
            request_id=request_id,
            outcomes=outcomes,
            from_store=len(stored),
            executed=len(executed),
            jobs_enqueued=self._jobs_enqueued() - enqueued_before,
            total_seconds=time.perf_counter() - started,
        )
        self.tracer.event(
            "ticket",
            request=request_id,
            from_store=ticket.from_store,
            executed=ticket.executed,
            jobs_enqueued=ticket.jobs_enqueued,
        )
        return ticket

    def _execute(
        self, spec: CampaignSpec, stored: Dict[str, CellOutcome]
    ) -> Dict[str, CellOutcome]:
        """Run the not-yet-stored cells and persist their outcomes."""
        run_spec = replace(spec, exclude=lambda cell: cell.key() in stored)
        runner = CampaignRunner(
            run_spec,
            results_dir=self.store.root,
            executor=self.executor,
            process_budget=self.process_budget,
            shard_size=self.shard_size,
            max_parallel_cells=self.max_parallel_cells,
            # The store is the durable layer; the runner's own manifest
            # would duplicate it per request name.
            manifest=False,
            keep_results=False,
            # Cell spans land in the service trace file, interleaved
            # with the request/job events.
            trace=self.tracer.child("campaign"),
        )
        result = runner.run()
        executed = {}
        for outcome in result.outcomes:
            self.store.put(outcome)
            executed[outcome.cell.key()] = outcome
        return executed

    def _jobs_enqueued(self) -> int:
        """The executor's cumulative enqueue counter (0 for in-process
        backends, which never enqueue anything)."""
        return getattr(self.executor, "total_enqueued", 0)


# -- file-based front end (serve / submit / status) --------------------


def _requests_dir(root: str, state: str) -> str:
    return os.path.join(root, "requests", state)


def _write_json(path: str, payload: dict) -> None:
    tmp_path = path + ".tmp.%d" % os.getpid()
    with open(tmp_path, "w") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
    os.replace(tmp_path, path)


def submit_request(root: str, request: ContractRequest) -> str:
    """Drop one request into ``<root>/requests/pending/``; returns the
    request id.  Re-submitting an identical request reuses its id (and
    its finished ticket, if one exists)."""
    request_id = request.digest()
    pending = _requests_dir(root, "pending")
    os.makedirs(pending, exist_ok=True)
    done_path = os.path.join(_requests_dir(root, "done"), request_id + ".json")
    if os.path.exists(done_path):
        return request_id
    _write_json(
        os.path.join(pending, request_id + ".json"),
        {"request": request_id, "spec": request.to_dict()},
    )
    return request_id


def load_ticket(root: str, request_id: str) -> Optional[ServiceTicket]:
    """The finished ticket for ``request_id``, or ``None``."""
    path = os.path.join(_requests_dir(root, "done"), request_id + ".json")
    if not os.path.exists(path):
        return None
    with open(path) as stream:
        return ServiceTicket.from_dict(json.load(stream))


def request_states(root: str) -> Dict[str, List[str]]:
    """Request ids by state (``pending`` / ``done`` / ``failed``)."""
    states: Dict[str, List[str]] = {}
    for state in ("pending", "done", "failed"):
        directory = _requests_dir(root, state)
        try:
            names = sorted(os.listdir(directory))
        except FileNotFoundError:
            names = []
        states[state] = [
            name[: -len(".json")] for name in names if name.endswith(".json")
        ]
    return states


def render_status(root: str) -> str:
    """The ``status`` CLI view over one service root."""
    states = request_states(root)
    rows = []
    for state in ("pending", "done", "failed"):
        for request_id in states[state]:
            rows.append([request_id, state])
    if not rows:
        rows = [["-", "no requests"]]
    return render_comparison_table(
        ["request", "state"],
        rows,
        title="Service %s: %d pending, %d done, %d failed"
        % (root, len(states["pending"]), len(states["done"]), len(states["failed"])),
    )


@dataclass
class ContractServer:
    """The serve loop: pending request files in, ticket files out."""

    service: ContractService
    root: str
    poll_seconds: float = 0.2
    #: Exit after this long with no pending requests (``None`` never).
    idle_timeout: Optional[float] = None
    #: Exit after serving this many requests (``None`` unbounded).
    max_requests: Optional[int] = None
    served: int = field(default=0, init=False)

    def poll_once(self) -> int:
        """Serve every currently pending request; returns the count."""
        pending_dir = _requests_dir(self.root, "pending")
        os.makedirs(pending_dir, exist_ok=True)
        handled = 0
        for name in sorted(os.listdir(pending_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(pending_dir, name)
            try:
                with open(path) as stream:
                    payload = json.load(stream)
                request = ContractRequest.from_dict(payload.get("spec", {}))
                ticket = self.service.request(request)
            except Exception as error:  # noqa: BLE001 - served back as a file
                failed_dir = _requests_dir(self.root, "failed")
                os.makedirs(failed_dir, exist_ok=True)
                _write_json(
                    os.path.join(failed_dir, name),
                    {"request": name[: -len(".json")], "error": repr(error)},
                )
                os.remove(path)
                self.service.tracer.event(
                    "request-failed", request=name[: -len(".json")], error=repr(error)
                )
                handled += 1
                continue
            done_dir = _requests_dir(self.root, "done")
            os.makedirs(done_dir, exist_ok=True)
            _write_json(os.path.join(done_dir, name), ticket.to_dict())
            os.remove(path)
            handled += 1
        self.served += handled
        return handled

    def serve(self) -> int:
        """Poll until idle timeout / max requests; returns requests served.

        A traced serve loop owns the process-wide metrics registry for
        its lifetime (request handling and in-process campaign cells
        accumulate into it) and appends one ``service`` record to the
        store's run-history index on exit.
        """
        from repro.metrics.registry import Metrics, current_metrics, install_metrics
        from repro.metrics.runs import record_run

        tracer = self.service.tracer
        previous_metrics = None
        if tracer.enabled and not current_metrics().enabled:
            previous_metrics = install_metrics(Metrics(tracer))
        started = time.time()
        self.service.tracer.event("serve-start", root=self.root)
        last_progress = time.time()
        try:
            while True:
                handled = self.poll_once()
                if handled:
                    last_progress = time.time()
                if (
                    self.max_requests is not None
                    and self.served >= self.max_requests
                ):
                    break
                if (
                    self.idle_timeout is not None
                    and time.time() - last_progress > self.idle_timeout
                ):
                    break
                if not handled:
                    time.sleep(self.poll_seconds)
        finally:
            if previous_metrics is not None:
                current_metrics().flush(final=True)
                install_metrics(previous_metrics)
            self.service.tracer.event("serve-exit", root=self.root, served=self.served)
            record_run(
                self.service.store.root,
                kind="service",
                label=self.root,
                seconds=time.time() - started,
                extra={"served": self.served},
            )
        return self.served
