"""JSONL trace spans for the service layer.

Every job transition, worker step, and service request appends one
structured JSON line to a shared trace file — the observability seed
for the ROADMAP's ``campaign watch`` direction.  The idiom follows the
OpenEvent-AI workflow exemplar (``@trace_step``-style hooks emitting
per-step records), adapted to multi-process appenders: lines go out
through :func:`repro.checkpoint.append_jsonl_line`, a single atomic
``O_APPEND`` write, so brokers and workers can share one file.

Events carry a monotonic-free wall-clock timestamp, the emitting
process id, an event ``kind`` (``"enqueue"``, ``"claim"``, ``"done"``,
``"request"``...), and arbitrary JSON fields.  Spans add a duration::

    {"ts": 1754650000.1, "pid": 4242, "kind": "claim", "job": "a1b2..."}
    {"ts": 1754650001.7, "pid": 4242, "kind": "execute",
     "job": "a1b2...", "seconds": 1.55, "ok": true}

A :class:`Tracer` constructed with ``path=None`` is a no-op, so call
sites never need to guard on tracing being configured.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.checkpoint import append_jsonl_line


class Tracer:
    """Append structured trace events to a shared JSONL file."""

    def __init__(self, path: Optional[str], source: str = ""):
        self.path = path
        #: Emitting component ("broker", "worker-3", "service"...),
        #: stamped on every event so one file interleaves cleanly.
        self.source = source
        if path:
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)

    @property
    def enabled(self) -> bool:
        return self.path is not None

    def event(self, kind: str, **fields) -> None:
        """Emit one instantaneous event."""
        if not self.path:
            return
        record = {"ts": round(time.time(), 6), "pid": os.getpid(), "kind": kind}
        if self.source:
            record["source"] = self.source
        record.update(fields)
        append_jsonl_line(self.path, record)

    @contextmanager
    def span(self, kind: str, **fields) -> Iterator[None]:
        """Emit one event on exit carrying the elapsed ``seconds`` and
        whether the body raised (``ok``)."""
        started = time.perf_counter()
        try:
            yield
        except BaseException:
            self.event(
                kind,
                seconds=round(time.perf_counter() - started, 6),
                ok=False,
                **fields,
            )
            raise
        self.event(
            kind, seconds=round(time.perf_counter() - started, 6), ok=True, **fields
        )

    def child(self, source: str) -> "Tracer":
        """A tracer on the same file with a different source label."""
        return Tracer(self.path, source=source)
