"""Deprecated shim: the service tracer is now :mod:`repro.trace`.

The tracing layer that started here grew repo-wide (pipeline phases,
executor shards, campaign cells, adaptive rounds all emit the same span
schema), so the implementation moved to :mod:`repro.trace`.  This
module re-exports :class:`repro.trace.Tracer` so existing imports keep
working; new code should import from :mod:`repro.trace` directly.
"""

from __future__ import annotations

import warnings

from repro.trace import Tracer

__all__ = ["Tracer"]

warnings.warn(
    "repro.service.trace is deprecated; import Tracer from repro.trace",
    DeprecationWarning,
    stacklevel=2,
)
