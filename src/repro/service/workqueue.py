"""The ``workqueue`` executor backend: evaluation leaves the machine.

:class:`WorkQueueExecutor` is the broker side of the distributed
service, behind the exact same :class:`EvaluationExecutor` interface
as the in-process pools — so ``SynthesisPipeline.executor("workqueue")``
and ``CampaignRunner`` distribute across independent worker processes
with no other change, and every existing guarantee (shard-manifest
resume, retry classification, byte-identity with the serial backend)
carries over.

``run(task, shards)``:

1. enqueue every not-yet-known shard job (jobs already ``done`` from a
   previous run are *not* re-enqueued — their result files are
   streamed back immediately, the distributed analogue of shard-manifest
   resume);
2. poll the queue, yielding ``(shard, rows)`` as ``done`` events land;
3. reclaim expired leases (a SIGKILLed worker's job is requeued and
   picked up by a survivor) and requeue retryable failures, both
   charged against a :class:`RetryPolicy` — exhaustion or a fatal
   failure raises :class:`ShardExecutionError` naming the shard;
4. watch worker heartbeats: outstanding work with no live worker for
   longer than ``wait_for_workers`` raises an actionable
   :class:`QueueUnavailableError` instead of hanging forever.

``embedded_workers=N`` runs N in-thread :class:`JobWorker` loops for
self-contained tests and benchmarks (the cores are pure Python, so
embedded threads measure queue overhead, not parallel speedup).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.evaluation.backends.base import (
    EvaluationExecutor,
    EvaluationTask,
    Row,
    Shard,
)
from repro.metrics.registry import current_metrics
from repro.resilience.errors import ShardExecutionError
from repro.resilience.retry import RetryPolicy
from repro.service.queue import (
    JobQueue,
    QueueUnavailableError,
    job_id_for,
    resolve_queue_root,
)
from repro.trace import Tracer
from repro.service.worker import JobWorker


class WorkQueueExecutor(EvaluationExecutor):
    """Distribute shards to independent workers via a filesystem queue."""

    name = "workqueue"
    external = True

    def __init__(
        self,
        processes: Optional[int] = None,
        queue_dir: Optional[str] = None,
        lease_seconds: float = 30.0,
        poll_seconds: float = 0.05,
        wait_for_workers: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        embedded_workers: int = 0,
        durable: bool = True,
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(processes)
        self.queue_dir = queue_dir
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds
        #: How long outstanding work may sit with zero live workers
        #: before the broker gives up with an actionable error.
        self.wait_for_workers = wait_for_workers
        self.retry = retry or RetryPolicy()
        #: In-thread workers for self-contained runs (tests, benches).
        self.embedded_workers = embedded_workers
        self.durable = durable
        self.tracer = (tracer or Tracer(None)).child("broker")
        #: Jobs enqueued by the most recent ``run`` (observability:
        #: a fully store/queue-served run enqueues zero), and the
        #: cumulative count across runs (service tickets report the
        #: per-request delta).
        self.last_enqueued = 0
        self.total_enqueued = 0

    # -- executor interface --------------------------------------------

    def run(
        self, task: EvaluationTask, shards: Sequence[Shard]
    ) -> Iterator[Tuple[Shard, List[Row]]]:
        queue = JobQueue(resolve_queue_root(self.queue_dir), durable=self.durable)
        queue.ensure()
        embedded = self._start_embedded(queue)
        try:
            yield from self._run(queue, task, shards)
        finally:
            for worker, thread in embedded:
                worker.stop()
            for worker, thread in embedded:
                thread.join(timeout=max(5.0, self.lease_seconds))

    def _run(
        self, queue: JobQueue, task: EvaluationTask, shards: Sequence[Shard]
    ) -> Iterator[Tuple[Shard, List[Row]]]:
        before = set(queue.load().jobs)
        job_ids = queue.enqueue_all(task, shards)
        shard_by_job = {job_id_for(task, shard): shard for shard in shards}
        self.last_enqueued = len(set(job_ids) - before)
        self.total_enqueued += self.last_enqueued
        self.tracer.event(
            "enqueue",
            jobs=len(job_ids),
            new=self.last_enqueued,
            reused=len(job_ids) - self.last_enqueued,
        )
        metrics = current_metrics()
        metrics.counter("queue.jobs.enqueued").inc(self.last_enqueued)
        metrics.counter("queue.jobs.reused").inc(
            len(job_ids) - self.last_enqueued
        )
        depth_gauge = metrics.gauge("queue.depth")
        running_gauge = metrics.gauge("queue.running")
        outstanding: Set[str] = set(job_ids)
        started = time.time()
        worker_seen_at: Optional[float] = None
        while outstanding:
            state = queue.load()
            counts = state.counts()
            depth_gauge.set(counts.get("pending", 0))
            running_gauge.set(counts.get("running", 0))
            metrics.maybe_flush()
            now = time.time()
            progressed = False
            for job_id in sorted(outstanding):
                job = state.jobs.get(job_id)
                if job is None:
                    continue
                if job.status == "done" and queue.has_result(job_id):
                    rows = queue.read_result(job_id)
                    outstanding.discard(job_id)
                    progressed = True
                    yield shard_by_job[job_id], rows
                elif job.status == "failed":
                    if job.fatal:
                        raise ShardExecutionError(
                            shard_by_job[job_id], cause=job.error, fatal=True
                        )
                    if job.attempts >= self.retry.max_attempts:
                        raise ShardExecutionError(
                            shard_by_job[job_id],
                            cause="%s (after %d attempts)"
                            % (job.error, job.attempts),
                        )
                    queue.requeue(job)
                    self.tracer.event(
                        "requeue", job=job_id, reason="failed", error=job.error
                    )
                    progressed = True
                elif (
                    job.status == "running"
                    and job.lease_until is not None
                    and job.lease_until < now
                ):
                    # The lease expired: the worker died (or hung past
                    # its lease).  Reclaim by requeueing under a fresh
                    # epoch so a live worker picks the shard up.
                    if job.attempts >= self.retry.max_attempts:
                        raise ShardExecutionError(
                            shard_by_job[job_id],
                            cause="lease expired after %d attempts (worker %s)"
                            % (job.attempts, job.worker),
                        )
                    queue.requeue(job)
                    self.tracer.event(
                        "requeue", job=job_id, reason="lease-expired", worker=job.worker
                    )
                    progressed = True
            if not outstanding:
                break
            live = queue.live_workers(
                queue.heartbeat_stale_after(self.lease_seconds), now=now
            )
            if live:
                worker_seen_at = now
            else:
                waited = now - (worker_seen_at or started)
                if waited > self.wait_for_workers:
                    raise QueueUnavailableError(
                        "%d job(s) outstanding on %s but no live worker for "
                        "%.0fs: start workers with `repro-synthesize service "
                        "worker --queue-dir %s` (or use --embedded-workers)"
                        % (len(outstanding), queue.root, waited, queue.root)
                    )
            if not progressed:
                time.sleep(self.poll_seconds)

    # -- embedded workers ----------------------------------------------

    def _start_embedded(self, queue: JobQueue):
        embedded = []
        for index in range(self.embedded_workers):
            worker = JobWorker(
                queue,
                worker_id="embedded-%d-%d" % (os.getpid(), index),
                poll_seconds=self.poll_seconds,
                lease_seconds=self.lease_seconds,
                tracer=self.tracer,
            )
            thread = threading.Thread(
                target=worker.run, name="workqueue-embedded-%d" % index, daemon=True
            )
            thread.start()
            embedded.append((worker, thread))
        return embedded
