"""The persistent contract store: finished contracts, key-addressed.

A :class:`ContractStore` is one directory holding everything the
service has ever synthesized::

    <root>/contracts.jsonl   the contract log (durable JSONL checkpoint)
    <root>/cache/            the dataset cache (pipeline cache_dir)

Contracts are stored as :class:`~repro.campaign.result.CellOutcome`
records keyed by the full :meth:`CampaignCell.key` — core, attacker,
template, restriction, solver, generator, budget, seed, and the
verification setting — i.e. exactly the dataset-cache axes plus the
synthesis ones, so "the contract for (core, attacker, template,
budget)" is a dictionary lookup.  Stored outcomes carry the template
digest of their execution time, and a lookup under a
differently-defined template of the same name misses instead of
serving a stale contract (the campaign-manifest rule).

``datasets_dir`` doubles as the pipeline dataset cache, which is what
makes *misses* cheap too: the campaign layer's prefix-derivation works
directly against it, so a smaller-budget request whose dataset is a
prefix of a larger cached corpus schedules zero evaluation work.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence

from repro.campaign.result import CellOutcome
from repro.campaign.spec import CampaignCell
from repro.checkpoint import CheckpointKeyError, JsonlCheckpoint
from repro.contracts.riscv_template import TEMPLATE_REGISTRY
from repro.contracts.template import template_digest


class ContractStoreKeyError(CheckpointKeyError):
    """The store file on disk is not a contract store."""


class _ContractLog(JsonlCheckpoint):
    """The JSONL checkpoint behind the store (one line per contract)."""

    kind = "contract-store"
    description = "contract store"
    subject = "store"
    hint = "pass a different store directory"
    key_error = ContractStoreKeyError

    def __init__(self, path: str, durable: bool = True):
        self.completed: Dict[str, CellOutcome] = {}
        super().__init__(path, {"store": "contracts"}, durable=durable)

    def _accept(self, entry: dict) -> None:
        outcome = CellOutcome.from_dict(entry, resumed=True)
        self.completed[outcome.cell.key()] = outcome

    def _entries(self) -> Iterable[dict]:
        for outcome in self.completed.values():
            yield outcome.to_dict()


class ContractStore:
    """Key-addressed persistence for finished contracts and datasets."""

    def __init__(self, root: str, durable: bool = True):
        self.root = root
        self.durable = durable
        self.contracts_path = os.path.join(root, "contracts.jsonl")
        #: The pipeline dataset cache — hand this to ``cache_dir()``
        #: (or let :meth:`SynthesisPipeline.store` do it) so datasets
        #: and contracts persist side by side under one key scheme.
        self.datasets_dir = os.path.join(root, "cache")
        os.makedirs(self.datasets_dir, exist_ok=True)
        self._log = _ContractLog(self.contracts_path, durable=durable)

    # -- lookup --------------------------------------------------------

    def reload(self) -> None:
        """Re-read the contract log (another process may have appended)."""
        self._log = _ContractLog(self.contracts_path, durable=self.durable)

    def get(self, cell: CampaignCell) -> Optional[CellOutcome]:
        """The stored outcome for ``cell``, or ``None``.

        Misses when the registered template of the cell's name no
        longer matches the digest the outcome was computed under.
        """
        return self.get_all([cell]).get(cell.key())

    def get_all(self, cells: Sequence[CampaignCell]) -> Dict[str, CellOutcome]:
        """Stored outcomes for ``cells``, keyed by cell key
        (digest-stale entries excluded)."""
        digests: Dict[str, str] = {}
        found = {}
        for cell in cells:
            outcome = self._log.completed.get(cell.key())
            if outcome is None:
                continue
            if cell.template not in digests:
                digests[cell.template] = template_digest(
                    TEMPLATE_REGISTRY.create(cell.template)
                )
            if outcome.template_digest != digests[cell.template]:
                continue
            found[cell.key()] = outcome
        return found

    def outcomes(self) -> List[CellOutcome]:
        return list(self._log.completed.values())

    # -- persistence ---------------------------------------------------

    def put(self, outcome: CellOutcome) -> bool:
        """Store one finished outcome; returns ``False`` when the key
        was already present (first write wins — results are
        deterministic, so overwriting could only churn bytes)."""
        key = outcome.cell.key()
        if key in self._log.completed:
            return False
        self._log._append(outcome.to_dict())
        self._log.completed[key] = outcome
        return True

    def put_result(self, cell: CampaignCell, result) -> CellOutcome:
        """Distill and store a :class:`PipelineResult` under ``cell``."""
        outcome = CellOutcome.from_pipeline_result(cell, result)
        self.put(outcome)
        return outcome

    def __len__(self) -> int:
        return len(self._log.completed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ContractStore(%r, %d contracts)" % (self.root, len(self))
