"""The worker loop: claim shards, evaluate, stream results back.

A :class:`JobWorker` is one independent process (or thread, for
embedded use) polling a :class:`~repro.service.queue.JobQueue`.  Per
iteration it heartbeats, honors a shutdown event, claims the first
pending job, rebuilds the evaluation stack from the job's registry
names + JSON state (cached per task payload — rebuilding the
multi-hundred-atom template per shard would dominate), and funnels the
shard through the same :func:`_evaluate_shard` seam as every pool
backend — so fault injection, :class:`ShardExecutionError` wrapping,
and byte-identity hold across the machine boundary for free.

Failures follow the resilience vocabulary: a retryable error appends a
``failed`` event (the broker requeues under its
:class:`~repro.resilience.RetryPolicy`), a fatal one marks the job
fatal, and either lands a structured
:class:`~repro.resilience.FailureRecord` in the shared
:class:`~repro.resilience.FailureLog` when one is configured — which
is why that log must survive many processes appending at once.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional

from repro.evaluation.backends.base import ShardEvaluator
from repro.evaluation.backends.executors import _evaluate_shard
from repro.metrics.registry import Metrics
from repro.resilience.errors import ShardExecutionError
from repro.resilience.injection import set_attempts
from repro.service.queue import JobQueue, JobRecord, task_from_payload
from repro.trace import Tracer

#: Default trace-heartbeat throttle (seconds); ``service worker
#: --heartbeat-interval`` overrides it.
DEFAULT_HEARTBEAT_INTERVAL = 2.0


class JobWorker:
    """One queue-draining worker."""

    def __init__(
        self,
        queue: JobQueue,
        worker_id: Optional[str] = None,
        poll_seconds: float = 0.05,
        lease_seconds: float = 30.0,
        max_jobs: Optional[int] = None,
        idle_timeout: Optional[float] = None,
        failure_log_path: Optional[str] = None,
        tracer: Optional[Tracer] = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    ):
        self.queue = queue
        self.worker_id = worker_id or "worker-%d" % os.getpid()
        self.poll_seconds = poll_seconds
        self.lease_seconds = lease_seconds
        #: Trace-heartbeat throttle: how often the ``heartbeat`` event
        #: and the utilization/queue-depth gauges are sampled.
        self.heartbeat_interval = heartbeat_interval
        #: Exit after this many completed/failed jobs (None = forever).
        self.max_jobs = max_jobs
        #: Exit after this long without claiming anything (None = never);
        #: the embedded/CI escape hatch so workers cannot run away.
        self.idle_timeout = idle_timeout
        self.failure_log_path = failure_log_path
        self.tracer = (tracer or Tracer(None)).child(self.worker_id)
        #: ShardEvaluator cache keyed by the canonical task payload.
        self._evaluators: Dict[str, ShardEvaluator] = {}
        self.completed = 0
        self.failed = 0
        #: Wall seconds spent inside job execution (utilization input).
        self.busy_seconds = 0.0
        #: Cooperative stop flag for embedded (in-thread) workers.
        self.stopped = False
        #: A worker-private registry (not the process-global one):
        #: embedded workers share a process, and per-worker gauges must
        #: not clobber each other — ``(pid, source)`` disambiguates the
        #: snapshots because the child tracer carries the worker id.
        self.metrics = Metrics(self.tracer)

    def stop(self) -> None:
        """Ask the loop to exit after the current job (thread-safe)."""
        self.stopped = True

    # -- loop ----------------------------------------------------------

    def run(self) -> int:
        """Drain the queue until shutdown / max_jobs / idle timeout.

        Returns the number of jobs completed successfully.
        """
        self.queue.ensure()
        self.tracer.event("worker-start", worker=self.worker_id)
        # Standalone worker processes adopt this worker's registry as
        # the process-global one, so the evaluation seams (batch-engine
        # lanes, solver, cache) record under the worker's source; an
        # embedded worker leaves the broker's registry installed and
        # keeps only its per-worker gauges private.
        from repro.metrics.registry import current_metrics, install_metrics

        previous_metrics = None
        if self.metrics.enabled and not current_metrics().enabled:
            previous_metrics = install_metrics(self.metrics)
        started = time.time()
        last_progress = started
        #: Trace heartbeats are throttled well below the queue-level
        #: heartbeat rate: the queue one feeds lease accounting (every
        #: iteration), the trace one feeds the ``watch`` liveness view
        #: and would otherwise dominate the file at tight poll loops.
        last_trace_beat = 0.0
        try:
            while not self.stopped:
                self.queue.heartbeat(self.worker_id)
                state = self.queue.load()
                if (
                    self.tracer.enabled
                    and time.time() - last_trace_beat >= self.heartbeat_interval
                ):
                    last_trace_beat = time.time()
                    self.tracer.event(
                        "heartbeat",
                        worker=self.worker_id,
                        completed=self.completed,
                        failed=self.failed,
                    )
                    self._sample_gauges(started, len(state.pending()))
                    self.metrics.flush()
                if state.shutdown:
                    self.tracer.event("worker-shutdown", worker=self.worker_id)
                    break
                job = self.queue.claim(self.worker_id, self.lease_seconds)
                if job is None:
                    if (
                        self.idle_timeout is not None
                        and time.time() - last_progress > self.idle_timeout
                    ):
                        self.tracer.event("worker-idle-exit", worker=self.worker_id)
                        break
                    time.sleep(self.poll_seconds)
                    continue
                last_progress = time.time()
                self.tracer.event(
                    "claim", job=job.job_id, epoch=job.epoch, shard=list(job.shard)
                )
                self._execute(job)
                if self.max_jobs is not None and (
                    self.completed + self.failed
                ) >= self.max_jobs:
                    self.tracer.event("worker-job-limit", worker=self.worker_id)
                    break
        finally:
            self._sample_gauges(started)
            self.metrics.flush(final=True)
            if previous_metrics is not None:
                install_metrics(previous_metrics)
            self.tracer.event(
                "worker-exit",
                worker=self.worker_id,
                completed=self.completed,
                failed=self.failed,
            )
        return self.completed

    def _sample_gauges(
        self, started: float, queue_depth: Optional[int] = None
    ) -> None:
        """Refresh the per-worker gauges (no-ops when untraced)."""
        self.metrics.gauge("worker.jobs.completed").set(self.completed)
        self.metrics.gauge("worker.jobs.failed").set(self.failed)
        elapsed = time.time() - started
        if elapsed > 0:
            self.metrics.gauge("worker.utilization").set(
                round(self.busy_seconds / elapsed, 6)
            )
        if queue_depth is not None:
            self.metrics.gauge("queue.depth").set(queue_depth)

    # -- execution -----------------------------------------------------

    def _evaluator(self, task_payload: dict) -> ShardEvaluator:
        key = json.dumps(task_payload, sort_keys=True)
        evaluator = self._evaluators.get(key)
        if evaluator is None:
            evaluator = ShardEvaluator(task_from_payload(task_payload))
            self._evaluators[key] = evaluator
        return evaluator

    def _execute(self, job: JobRecord) -> None:
        shard = tuple(job.shard)
        # The job's winning-claim count *is* the attempt number; publish
        # it so attempt-dependent fault plans ("fail once, then recover")
        # behave identically in-process and across the queue boundary.
        set_attempts({shard: job.attempts})
        job_started = time.monotonic()
        try:
            with self.tracer.span("execute", job=job.job_id, shard=list(shard)):
                evaluator = self._evaluator(job.task)
                _, rows = _evaluate_shard(evaluator, shard)
        except ShardExecutionError as error:
            self.busy_seconds += time.monotonic() - job_started
            self.queue.fail(job, error=error.cause, fatal=error.fatal)
            self.tracer.event(
                "failed", job=job.job_id, error=error.cause, fatal=error.fatal
            )
            self._record_failure(job, error)
            self.failed += 1
            return
        self.busy_seconds += time.monotonic() - job_started
        self.queue.complete(job, rows)
        self.tracer.event("done", job=job.job_id, rows=len(rows))
        self.completed += 1

    def _record_failure(self, job: JobRecord, error: ShardExecutionError) -> None:
        if self.failure_log_path is None:
            return
        from repro.resilience import FailureLog, FailureRecord

        log = FailureLog(
            self.failure_log_path, key={"scope": "service"}, durable=True
        )
        log.append_record(
            FailureRecord(
                kind="shard",
                unit={
                    "start_id": job.shard[0],
                    "count": job.shard[1],
                    "job": job.job_id,
                    "worker": self.worker_id,
                },
                error=error.cause,
                attempts=job.attempts,
            )
        )
