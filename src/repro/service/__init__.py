"""Contract synthesis as a service.

The service package turns the toolchain into a long-running system:
shard evaluation leaves the machine boundary through a filesystem
work queue, finished contracts persist in a key-addressed store, and
a request front-end answers "give me the contract for (core, attacker,
template, budget)" — instantly when the store already holds it, by
scheduling campaign cells on the queue when it does not.

Three cooperating layers:

:mod:`repro.service.queue` / :mod:`repro.service.worker`
    A JSONL-event-sourced job queue (atomic claim → running →
    done/failed state machine with lease timestamps) and the worker
    loop that drains it.  Jobs are budget-free-keyed shard
    descriptors; everything a worker needs is name-addressable
    (registry name + JSON state), per the architecture invariant.
:mod:`repro.service.workqueue`
    The ``workqueue`` :data:`EXECUTOR_REGISTRY` backend: the broker
    side that enqueues shards, reclaims dead leases, and streams
    results back through the normal executor interface — byte-identical
    to the serial executor.
:mod:`repro.service.store` / :mod:`repro.service.service`
    The persistent contract store (keyed like the dataset cache, with
    campaign prefix-derivation so smaller budgets are served from
    larger cached datasets) and the :class:`ContractService` request
    API plus the file-based ``serve`` / ``submit`` / ``status``
    front-end.
"""

from repro.service.queue import JobQueue, JobRecord, QueueUnavailableError
from repro.service.service import (
    ContractRequest,
    ContractServer,
    ContractService,
    ServiceTicket,
)
from repro.service.store import ContractStore
from repro.trace import Tracer
from repro.service.worker import JobWorker
from repro.service.workqueue import WorkQueueExecutor

__all__ = [
    "ContractRequest",
    "ContractServer",
    "ContractService",
    "ContractStore",
    "JobQueue",
    "JobRecord",
    "JobWorker",
    "QueueUnavailableError",
    "ServiceTicket",
    "Tracer",
    "WorkQueueExecutor",
]
