"""The filesystem-backed job queue: an event-sourced shard ledger.

One directory is the whole queue — no daemon, no sockets, no third
party.  Brokers and workers coordinate through three kinds of files::

    <root>/queue.jsonl          the event log (the source of truth)
    <root>/results/<job>.json   one result file per finished job
    <root>/workers/<id>.json    worker heartbeats (atomic replace)

``queue.jsonl`` follows :class:`repro.checkpoint.JsonlCheckpoint`
semantics adapted to many concurrent writers: every event is one JSONL
line appended through a single atomic ``O_APPEND`` write (fsynced —
the queue is durable by default), torn fragments from killed writers
are terminated by the next append and skipped by the fold (safe: every
event is confirmed or reissued by its writer), and the log is never
rewritten (a rewrite could drop another process's concurrent append).
Queue state is a pure fold over the event stream, so every process
sees the same state machine::

    enqueue ──▶ pending ──claim──▶ running ──done────▶ done
                   ▲                  │ └──failed───▶ failed
                   └───── requeue ────┘ (lease expired / retryable)

Claims are resolved by *file order*: a worker appends its claim for a
``(job, epoch)`` it observed pending, re-reads the log, and has won
exactly when its claim line is the first for that epoch.  Losing
claims are ignored by the fold, so two workers can race without locks
and at most one executes the job per epoch.  Requeues bump the epoch,
which invalidates any stale lease still executing — and because test
cases are generated per test id, a stale worker finishing anyway is
harmless: it writes the byte-identical result file.

Jobs are **budget-free keyed**: the job id digests the task payload
(registry names + JSON state) and the shard descriptor, so re-runs and
broker restarts re-enqueue the same ids and finished work is reused
through the ``done`` fold state plus the result file.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.checkpoint import append_jsonl_line
from repro.evaluation.backends.base import EvaluationTask, Row, Shard

QUEUE_VERSION = 1

#: A worker whose newest heartbeat is older than this many lease
#: periods is presumed dead for liveness checks.
_HEARTBEAT_STALE_LEASES = 2.0


class QueueUnavailableError(ValueError):
    """The workqueue backend cannot reach a usable queue.

    A :class:`ValueError` so the resilience layer's retry
    classification treats it as fatal configuration, not a transient
    worth backing off on.
    """


def task_to_payload(task: EvaluationTask) -> dict:
    """The task as the plain-JSON payload shipped inside job records."""
    return {
        "core": task.core_name,
        "seed": task.seed,
        "max_distance": task.max_distance,
        "fastpath": task.use_fastpath,
        "template": task.template_name,
        "attacker": task.attacker_name,
        "generator": task.generator_name,
        "generator_state": task.generator_state,
    }


def task_from_payload(payload: dict) -> EvaluationTask:
    """Rebuild the task a worker must execute from a job payload."""
    return EvaluationTask(
        core_name=payload["core"],
        seed=payload["seed"],
        max_distance=payload.get("max_distance", 4),
        use_fastpath=payload.get("fastpath", True),
        template_name=payload.get("template"),
        attacker_name=payload.get("attacker"),
        generator_name=payload.get("generator", "random"),
        generator_state=payload.get("generator_state"),
    )


def job_id_for(task: EvaluationTask, shard: Shard) -> str:
    """The stable job id: a digest of the payload and the shard.

    Budget-free by construction — the payload has no total budget, so
    the same ``(task, shard)`` enqueued by any broker at any time maps
    to the same id and finished results are reused.  The fastpath
    field is projected to its bool identity key before hashing — the
    compiled and batch modes produce byte-identical rows, so their jobs
    must alias (the shipped payload keeps the real mode, so workers
    still run the requested engine).
    """
    payload = task_to_payload(task)
    payload["fastpath"] = bool(payload["fastpath"])
    body = {"task": payload, "shard": list(shard)}
    digest = hashlib.md5(json.dumps(body, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()


@dataclass
class JobRecord:
    """The folded state of one job after replaying the event log."""

    job_id: str
    task: dict
    shard: Shard
    status: str = "pending"  # pending | running | done | failed
    #: Bumped by every requeue; claims and failures must name the
    #: epoch they acted on, so stale workers cannot corrupt the fold.
    epoch: int = 0
    worker: Optional[str] = None
    lease_until: Optional[float] = None
    #: Applied (winning) claims across all epochs — the retry budget
    #: the broker charges against its :class:`RetryPolicy`.
    attempts: int = 0
    error: str = ""
    fatal: bool = False


@dataclass
class QueueState:
    """Everything a fold over ``queue.jsonl`` produces."""

    jobs: Dict[str, JobRecord] = field(default_factory=dict)
    shutdown: bool = False

    def pending(self) -> List[JobRecord]:
        return [job for job in self.jobs.values() if job.status == "pending"]

    def running(self) -> List[JobRecord]:
        return [job for job in self.jobs.values() if job.status == "running"]

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self.jobs.values():
            counts[job.status] = counts.get(job.status, 0) + 1
        return counts


class JobQueue:
    """Broker/worker handle on one queue directory.

    Cheap to construct; every operation re-reads the event log, so
    handles in different processes never hold stale authority.  All
    mutations are appends (or whole-file atomic replaces), never
    in-place edits.
    """

    def __init__(self, root: str, durable: bool = True):
        self.root = root
        self.log_path = os.path.join(root, "queue.jsonl")
        self.results_dir = os.path.join(root, "results")
        self.workers_dir = os.path.join(root, "workers")
        self.durable = durable

    # -- layout --------------------------------------------------------

    def ensure(self) -> "JobQueue":
        """Create the queue layout (idempotent, multi-process safe)."""
        os.makedirs(self.results_dir, exist_ok=True)
        os.makedirs(self.workers_dir, exist_ok=True)
        try:
            # O_EXCL makes exactly one creator write the header even
            # when a broker and several workers race on a fresh dir.
            descriptor = os.open(
                self.log_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
            )
        except FileExistsError:
            return self
        try:
            header = {"event": "init", "version": QUEUE_VERSION}
            os.write(descriptor, (json.dumps(header) + "\n").encode("utf-8"))
            if self.durable:
                os.fsync(descriptor)
        finally:
            os.close(descriptor)
        return self

    @property
    def exists(self) -> bool:
        return os.path.exists(self.log_path)

    # -- event log -----------------------------------------------------

    def _emit(self, event: dict) -> None:
        append_jsonl_line(self.log_path, event, durable=self.durable)

    def _events(self) -> List[dict]:
        try:
            with open(self.log_path, "rb") as stream:
                content = stream.read().decode("utf-8")
        except FileNotFoundError:
            return []
        events = []
        for line in content.splitlines():
            if not line.strip():
                # Blank line: two appenders both terminated the same
                # torn tail (see :func:`append_jsonl_line`).
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                # A torn fragment — final (writer died mid-append and
                # nobody wrote since) or mid-file (a later appender
                # terminated it).  Skipping is safe because every event
                # is confirmed or reissued: claims are verified by
                # re-reading the fold, expired leases are requeued, a
                # lost ``done`` re-executes idempotently, and a lost
                # ``enqueue`` is re-emitted by the next broker pass.
                continue
        if events and events[0].get("event") == "init":
            if events[0].get("version") != QUEUE_VERSION:
                raise ValueError(
                    "%s is not a version-%d queue log"
                    % (self.log_path, QUEUE_VERSION)
                )
        return events

    def load(self) -> QueueState:
        """Fold the event log into the current queue state."""
        state = QueueState()
        for event in self._events():
            self._apply(state, event)
        return state

    @staticmethod
    def _apply(state: QueueState, event: dict) -> None:
        kind = event.get("event")
        if kind == "shutdown":
            state.shutdown = True
            return
        if kind in (None, "init"):
            return
        job_id = event.get("job")
        if kind == "enqueue":
            if job_id not in state.jobs:
                state.jobs[job_id] = JobRecord(
                    job_id=job_id,
                    task=event.get("task", {}),
                    shard=tuple(event.get("shard", (0, 0))),
                )
            return
        job = state.jobs.get(job_id)
        if job is None:
            return
        if kind == "claim":
            # First claim per (job, epoch) in file order wins; the
            # rest fall through here as no-ops and their workers
            # detect the loss when they re-read and confirm.
            if job.status == "pending" and event.get("epoch") == job.epoch:
                job.status = "running"
                job.worker = event.get("worker")
                job.lease_until = event.get("lease")
                job.attempts += 1
        elif kind == "done":
            # Terminal and idempotent: per-test-id generation makes
            # duplicate executions byte-identical, so whichever done
            # event lands first settles the job.
            job.status = "done"
            job.lease_until = None
        elif kind == "failed":
            if job.status == "running" and event.get("epoch") == job.epoch:
                job.status = "failed"
                job.error = event.get("error", "")
                job.fatal = bool(event.get("fatal", False))
                job.lease_until = None
        elif kind == "requeue":
            if job.status in ("running", "failed") and event.get("epoch") == job.epoch:
                job.status = "pending"
                job.epoch += 1
                job.worker = None
                job.lease_until = None
                job.error = ""

    # -- broker side ---------------------------------------------------

    def enqueue(self, task: EvaluationTask, shard: Shard) -> str:
        """Enqueue one shard job; already-known ids are not re-added."""
        job_id = job_id_for(task, shard)
        state = self.load()
        if job_id not in state.jobs:
            self._emit(
                {
                    "event": "enqueue",
                    "job": job_id,
                    "task": task_to_payload(task),
                    "shard": list(shard),
                }
            )
        return job_id

    def enqueue_all(
        self, task: EvaluationTask, shards: Sequence[Shard]
    ) -> List[str]:
        """Enqueue a shard plan with one state read (not one per job)."""
        state = self.load()
        ids = []
        for shard in shards:
            job_id = job_id_for(task, shard)
            if job_id not in state.jobs:
                self._emit(
                    {
                        "event": "enqueue",
                        "job": job_id,
                        "task": task_to_payload(task),
                        "shard": list(shard),
                    }
                )
                state.jobs[job_id] = JobRecord(
                    job_id=job_id, task=task_to_payload(task), shard=tuple(shard)
                )
            ids.append(job_id)
        return ids

    def requeue(self, job: JobRecord) -> None:
        """Send a running/failed job back to pending (epoch bump)."""
        self._emit({"event": "requeue", "job": job.job_id, "epoch": job.epoch})

    def request_shutdown(self) -> None:
        """Ask every worker polling this queue to exit."""
        self._emit({"event": "shutdown"})

    def reclaim_expired(self, now: Optional[float] = None) -> List[JobRecord]:
        """Requeue every running job whose lease has expired.

        Returns the reclaimed records (pre-bump) so the caller can
        charge their attempts against its retry policy.
        """
        now = time.time() if now is None else now
        reclaimed = []
        for job in self.load().running():
            if job.lease_until is not None and job.lease_until < now:
                self.requeue(job)
                reclaimed.append(job)
        return reclaimed

    # -- worker side ---------------------------------------------------

    def claim(
        self, worker_id: str, lease_seconds: float, now: Optional[float] = None
    ) -> Optional[JobRecord]:
        """Claim the first pending job, or ``None`` if there is none.

        Optimistic protocol: append a claim naming the observed epoch,
        re-read, and return the job only if our claim line won the
        fold.  Losing costs one wasted append; it never costs
        correctness.
        """
        now = time.time() if now is None else now
        state = self.load()
        for job in state.pending():
            lease_until = now + lease_seconds
            self._emit(
                {
                    "event": "claim",
                    "job": job.job_id,
                    "epoch": job.epoch,
                    "worker": worker_id,
                    "lease": lease_until,
                }
            )
            confirmed = self.load().jobs.get(job.job_id)
            if (
                confirmed is not None
                and confirmed.status == "running"
                and confirmed.worker == worker_id
                and confirmed.epoch == job.epoch
            ):
                return confirmed
            # Lost the race for this job; try the next pending one.
        return None

    def complete(self, job: JobRecord, rows: Sequence[Row]) -> None:
        """Persist the result file, then mark the job done.

        Order matters: the result file must be durably in place before
        the ``done`` event makes it authoritative.
        """
        self.write_result(job.job_id, rows)
        self._emit({"event": "done", "job": job.job_id, "epoch": job.epoch})

    def fail(self, job: JobRecord, error: str, fatal: bool = False) -> None:
        self._emit(
            {
                "event": "failed",
                "job": job.job_id,
                "epoch": job.epoch,
                "error": error,
                "fatal": fatal,
            }
        )

    # -- results -------------------------------------------------------

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.results_dir, job_id + ".json")

    def write_result(self, job_id: str, rows: Sequence[Row]) -> None:
        payload = {"job": job_id, "rows": [list(row) for row in rows]}
        tmp_path = self.result_path(job_id) + ".tmp.%d" % os.getpid()
        with open(tmp_path, "w") as stream:
            json.dump(payload, stream)
            if self.durable:
                stream.flush()
                os.fsync(stream.fileno())
        os.replace(tmp_path, self.result_path(job_id))

    def read_result(self, job_id: str) -> List[Row]:
        with open(self.result_path(job_id)) as stream:
            payload = json.load(stream)
        return [
            (row[0], bool(row[1]), tuple(row[2]), row[3]) for row in payload["rows"]
        ]

    def has_result(self, job_id: str) -> bool:
        return os.path.exists(self.result_path(job_id))

    # -- worker liveness -----------------------------------------------

    def heartbeat(self, worker_id: str) -> None:
        """Atomically refresh this worker's liveness file."""
        path = os.path.join(self.workers_dir, worker_id + ".json")
        tmp_path = path + ".tmp"
        with open(tmp_path, "w") as stream:
            json.dump({"worker": worker_id, "pid": os.getpid(), "ts": time.time()}, stream)
        os.replace(tmp_path, path)

    def live_workers(
        self, stale_seconds: float, now: Optional[float] = None
    ) -> List[str]:
        """Worker ids whose heartbeat is newer than ``stale_seconds``."""
        now = time.time() if now is None else now
        live = []
        try:
            names = os.listdir(self.workers_dir)
        except FileNotFoundError:
            return []
        for name in sorted(names):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.workers_dir, name)) as stream:
                    record = json.load(stream)
            except (OSError, ValueError):
                continue
            if now - record.get("ts", 0.0) <= stale_seconds:
                live.append(record.get("worker", name[: -len(".json")]))
        return live

    @staticmethod
    def heartbeat_stale_after(lease_seconds: float) -> float:
        return lease_seconds * _HEARTBEAT_STALE_LEASES

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "JobQueue(%r)" % self.root


def resolve_queue_root(queue_dir: Optional[str]) -> str:
    """The queue directory from an explicit argument or the
    ``REPRO_QUEUE_DIR`` environment variable, or raise actionably."""
    root = queue_dir or os.environ.get("REPRO_QUEUE_DIR")
    if not root:
        raise QueueUnavailableError(
            "the workqueue executor needs a queue directory: start a broker "
            "with `repro-synthesize serve`, pass --queue-dir, or set "
            "REPRO_QUEUE_DIR"
        )
    return root
