"""The resilient executor: retry, watchdog timeouts, quarantine.

:class:`ResilientExecutor` wraps any registered evaluation backend and
adds the fault semantics the inner backends deliberately do not have:

- **shard retry** — a sweep that dies with a
  :class:`~repro.resilience.errors.ShardExecutionError` costs exactly
  one attempt for the shard it names; the survivors are re-swept and
  already-yielded shards are never re-evaluated;
- **soft deadlines** — with ``shard_timeout`` set, pool sweeps run
  under a watchdog that abandons the pool when a shard stays running
  past its deadline (a hung worker cannot be interrupted, so the pool
  is discarded with ``cancel_futures`` and a fresh one serves the next
  attempt);
- **quarantine** — a shard that exhausts its attempts becomes a
  :class:`~repro.resilience.quarantine.FailureRecord` (kind
  ``"shard"``) in the failure log and the run continues without its
  rows;
- **downgrade** — repeated pool-level breakage (no shard attribution)
  swaps the inner backend for the serial reference executor and logs
  the downgrade instead of crashing the run.

Determinism: retries re-run the same ``(start_id, count)`` descriptor
under the same task, and test cases are generated per test id, so a
run that survives faults yields rows byte-identical to a fault-free
run — the property the fault-matrix suite pins.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.evaluation.backends.base import (
    EvaluationExecutor,
    EvaluationTask,
    Row,
    Shard,
)
from repro.metrics.registry import current_metrics
from repro.resilience import injection
from repro.resilience.errors import ShardExecutionError, ShardTimeoutError
from repro.resilience.quarantine import FailureLog, FailureRecord
from repro.resilience.retry import RetryPolicy, is_retryable

#: Watchdog poll interval while futures are in flight.
_TICK_SECONDS = 0.05

#: Observer for failure events (retries, quarantines, downgrades).
#: :func:`repro.evaluation.parallel.evaluate_parallel` bridges these
#: records into ``failure`` events on the run's trace file, so every
#: retry/quarantine/downgrade decision is visible to ``watch``.
FailureCallback = Callable[[FailureRecord], None]

#: Failure-record kind -> run-metric counter name.
_FAILURE_COUNTERS = {
    "retry": "resilience.retries",
    "shard": "resilience.quarantines",
    "pool": "resilience.pool_failures",
    "downgrade": "resilience.downgrades",
}


class ResilientExecutor(EvaluationExecutor):
    """Wrap ``inner`` with retry, soft deadlines, and quarantine."""

    name = "resilient"

    def __init__(
        self,
        inner: EvaluationExecutor,
        policy: Optional[RetryPolicy] = None,
        shard_timeout: Optional[float] = None,
        failure_log: Optional[FailureLog] = None,
        on_event: Optional[FailureCallback] = None,
        pool_failure_threshold: int = 2,
    ):
        super().__init__(inner.processes)
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.shard_timeout = shard_timeout
        self.failure_log = failure_log
        self.on_event = on_event
        self.pool_failure_threshold = pool_failure_threshold

    # -- event plumbing ------------------------------------------------

    def _emit(self, record: FailureRecord, durable: bool) -> None:
        counter = _FAILURE_COUNTERS.get(record.kind)
        if counter is not None:
            current_metrics().counter(counter).inc()
        if durable and self.failure_log is not None:
            self.failure_log.append_record(record)
        if self.on_event is not None:
            self.on_event(record)

    @staticmethod
    def _sleep(seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    # -- the attempt loop ----------------------------------------------

    def run(
        self, task: EvaluationTask, shards: Sequence[Shard]
    ) -> Iterator[Tuple[Shard, List[Row]]]:
        pending = sorted(shards)
        attempts = {shard: 0 for shard in pending}
        inner = self.inner
        pool_failures = 0
        while pending:
            # Publish next-attempt numbers before the sweep: the pool
            # forks after this, so workers inherit them and
            # attempt-dependent fault plans fire consistently.
            injection.set_attempts(
                {shard: attempts[shard] + 1 for shard in pending}
            )
            completed: List[Shard] = []
            try:
                for shard, rows in self._sweep(inner, task, pending):
                    completed.append(shard)
                    yield shard, rows
                pending = [shard for shard in pending if shard not in completed]
            except ShardExecutionError as error:
                pending = [shard for shard in pending if shard not in completed]
                shard = error.shard
                attempts[shard] = attempts.get(shard, 0) + 1
                if error.fatal or not is_retryable(error):
                    raise
                if attempts[shard] >= self.policy.max_attempts:
                    self._emit(
                        FailureRecord(
                            kind="shard",
                            unit={"start_id": shard[0], "count": shard[1]},
                            error=str(error),
                            attempts=attempts[shard],
                        ),
                        durable=True,
                    )
                    pending = [other for other in pending if other != shard]
                else:
                    self._emit(
                        FailureRecord(
                            kind="retry",
                            unit={"start_id": shard[0], "count": shard[1]},
                            error=str(error),
                            attempts=attempts[shard],
                        ),
                        durable=False,
                    )
                    self._sleep(self.policy.delay(attempts[shard]))
            except Exception as error:
                # Pool-level breakage: no shard attribution, so no
                # per-shard attempt is charged — but repeated breakage
                # must not loop forever, hence the downgrade chain.
                if not is_retryable(error):
                    raise
                pending = [shard for shard in pending if shard not in completed]
                pool_failures += 1
                self._emit(
                    FailureRecord(
                        kind="pool",
                        unit={"executor": inner.name},
                        error=str(error),
                        attempts=pool_failures,
                    ),
                    durable=False,
                )
                if (
                    inner.name != "serial"
                    and pool_failures >= self.pool_failure_threshold
                ):
                    from repro.evaluation.backends.executors import SerialExecutor

                    self._emit(
                        FailureRecord(
                            kind="downgrade",
                            unit={"from": inner.name, "to": "serial"},
                            error=str(error),
                            attempts=pool_failures,
                        ),
                        durable=True,
                    )
                    inner = SerialExecutor()
                elif pool_failures >= (
                    self.pool_failure_threshold + self.policy.max_attempts
                ):
                    raise
                self._sleep(self.policy.delay(pool_failures))

    # -- sweeps --------------------------------------------------------

    def _sweep(
        self, inner: EvaluationExecutor, task: EvaluationTask, shards: Sequence[Shard]
    ) -> Iterator[Tuple[Shard, List[Row]]]:
        """One pass of ``inner`` over ``shards`` (watchdogged if asked)."""
        if inner.name != "serial":
            injection.maybe_inject("pool", executor=inner.name)
        if self.shard_timeout is not None and inner.name != "serial":
            yield from self._sweep_with_watchdog(inner, task, shards)
        else:
            yield from inner.run(task, shards)

    def _sweep_with_watchdog(
        self, inner: EvaluationExecutor, task: EvaluationTask, shards: Sequence[Shard]
    ) -> Iterator[Tuple[Shard, List[Row]]]:
        """Pool sweep under per-shard soft deadlines.

        One future per shard; a future observed ``running`` for longer
        than ``shard_timeout`` raises :class:`ShardTimeoutError` for its
        shard.  The pool is abandoned without waiting (the hung worker
        cannot be joined) and the outer attempt loop re-sweeps the
        survivors in a fresh pool.
        """
        from repro.evaluation.backends import executors as backends

        workers = backends._default_processes(inner.processes)
        if inner.name == "threaded":
            import threading

            state = threading.local()

            def evaluate(shard: Shard) -> Tuple[Shard, List[Row]]:
                worker = getattr(state, "worker", None)
                if worker is None:
                    worker = state.worker = backends.ShardEvaluator(task)
                return backends._evaluate_shard(worker, shard)

            pool = ThreadPoolExecutor(max_workers=workers)
            submit = lambda shard: pool.submit(evaluate, shard)  # noqa: E731
        else:
            import multiprocessing

            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=backends._initialize_process,
                initargs=(task,),
            )
            submit = lambda shard: pool.submit(  # noqa: E731
                backends._evaluate_in_process, shard
            )

        waiting = {submit(shard): shard for shard in shards}
        running_since: dict = {}
        abandoned = False
        try:
            while waiting:
                done, _ = wait(
                    set(waiting), timeout=_TICK_SECONDS, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                for future in done:
                    shard = waiting.pop(future)
                    running_since.pop(future, None)
                    yield future.result()
                for future in waiting:
                    if future.running() and future not in running_since:
                        running_since[future] = now
                expired = [
                    future
                    for future, since in running_since.items()
                    if now - since >= self.shard_timeout
                ]
                if expired:
                    abandoned = True
                    current_metrics().counter("resilience.timeouts").inc()
                    raise ShardTimeoutError(waiting[expired[0]], self.shard_timeout)
        except BaseException:
            abandoned = True
            raise
        finally:
            for future in waiting:
                future.cancel()
            # On abandonment the hung worker cannot be joined; leave
            # the pool to drain in the background and move on.
            pool.shutdown(wait=not abandoned)
