"""The fault-injection seam: one active plan, consulted by site name.

Production code calls :func:`maybe_inject` at a handful of fixed seams
(see :mod:`repro.resilience.faults` for the site vocabulary); with no
plan installed that is a single ``is None`` check, so the seam costs
nothing in real runs.

The active plan is module-global *on purpose*: the pool backends fork,
and a forked child inherits this module's state — installing a plan in
the parent before the pool is built injects it into every worker with
no extra plumbing, mirroring how a remote worker would receive the
plan as ``(name, state)``.  :func:`set_attempts` publishes the
per-shard attempt numbers the same way, so attempt-dependent plans
("fail twice, then recover") behave identically in-process and across
forks.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Optional, Tuple

from repro.resilience.faults import FAULT_REGISTRY, FaultPlan

#: The single active fault plan (``None`` in production runs).
_ACTIVE: Optional[FaultPlan] = None

#: Next attempt number per shard, published before each sweep so
#: attempt-dependent plans work across the fork boundary.
_ATTEMPTS: Dict[Tuple[int, int], int] = {}


def install_fault(name: str, state: Optional[dict] = None) -> FaultPlan:
    """Install the named plan (with JSON ``state``) as the active fault."""
    global _ACTIVE
    _ACTIVE = FAULT_REGISTRY.create(name, **(state or {}))
    _ATTEMPTS.clear()
    return _ACTIVE


def clear_fault() -> None:
    """Remove the active plan and forget attempt bookkeeping."""
    global _ACTIVE
    _ACTIVE = None
    _ATTEMPTS.clear()


def active_fault() -> Optional[FaultPlan]:
    return _ACTIVE


def set_attempts(attempts: Dict[Tuple[int, int], int]) -> None:
    """Publish the next attempt number for each pending shard."""
    _ATTEMPTS.clear()
    _ATTEMPTS.update(attempts)


def current_attempt(shard: Tuple[int, int]) -> int:
    return _ATTEMPTS.get(tuple(shard), 1)


def maybe_inject(site: str, **context) -> None:
    """Consult the active fault plan at ``site`` (no-op when none)."""
    plan = _ACTIVE
    if plan is None:
        return
    if site == "shard" and "attempt" not in context:
        context["attempt"] = current_attempt(context["shard"])
    plan.inject(site, **context)


@contextmanager
def inject_fault(name: str, **state):
    """Context manager installing a fault for the enclosed block."""
    plan = install_fault(name, state)
    try:
        yield plan
    finally:
        clear_fault()
