"""Structured failure records and the quarantine manifest.

When a unit of work exhausts its retries the run does not die — the
failure becomes a :class:`FailureRecord` carried on the final result
(``PipelineResult.failures``, ``CampaignResult.failures``) and, when a
quarantine path is configured, appended to a :class:`FailureLog`: the
same key-bound, torn-line-recovering JSONL checkpoint shape as the
shard and cell manifests, so operators inspect quarantined work with
the same tools and guarantees.

Record kinds:

``"shard"`` / ``"cell"`` / ``"round"``
    The unit exhausted its retries and was quarantined (rounds are
    sequential, so an exhausted round is recorded *and* still fatal).
``"retry"`` / ``"pool"``
    A transient failure that was retried — emitted to ``on_event``
    observers, durable only if a caller chooses to log it.
``"downgrade"``
    The executor fallback chain fired (pool backend → serial).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.checkpoint import JsonlCheckpoint


@dataclass(frozen=True)
class FailureRecord:
    """One structured failure: what failed, how, and how many times."""

    #: ``"shard"``, ``"cell"``, ``"round"``, ``"retry"``, ``"pool"``,
    #: or ``"downgrade"``.
    kind: str
    #: Identity of the failed unit (``{"start_id": ..., "count": ...}``
    #: for shards, ``{"cell": label}`` for cells, ...).
    unit: Dict = field(default_factory=dict)
    #: Human-readable error description (``repr`` of the exception).
    error: str = ""
    #: Attempts consumed when the record was emitted.
    attempts: int = 1

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "unit": dict(self.unit),
            "error": self.error,
            "attempts": self.attempts,
        }

    @staticmethod
    def from_dict(data: dict) -> "FailureRecord":
        return FailureRecord(
            kind=data["kind"],
            unit=dict(data.get("unit", {})),
            error=data.get("error", ""),
            attempts=data.get("attempts", 1),
        )


class FailureLog(JsonlCheckpoint):
    """The quarantine manifest: one JSONL line per durable failure."""

    kind = "failure-log"
    description = "failure log"
    subject = "run"
    hint = "pass a different quarantine path"

    def __init__(self, path: str, key: dict, durable: bool = False):
        self.records: List[FailureRecord] = []
        super().__init__(path, key, durable=durable)

    def _accept(self, entry: dict) -> None:
        self.records.append(FailureRecord.from_dict(entry))

    def _entries(self):
        for record in self.records:
            yield record.to_dict()

    def append_record(self, record: FailureRecord) -> None:
        self._append(record.to_dict())
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)
