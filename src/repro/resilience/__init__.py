"""Fault-tolerant execution: injection, retry, timeouts, quarantine.

Public surface (lazily imported):

- :data:`FAULT_REGISTRY` and the :class:`FaultPlan` hierarchy — the
  name-addressable fault-injection harness;
- :func:`install_fault` / :func:`clear_fault` / :func:`inject_fault` /
  :func:`maybe_inject` — the injection seam;
- :class:`RetryPolicy` / :func:`is_retryable` — deterministic backoff
  and the explicit retryable-vs-fatal classification;
- :class:`FailureRecord` / :class:`FailureLog` — structured failure
  records and the quarantine manifest;
- :class:`ResilientExecutor` — retry/watchdog/quarantine wrapper over
  any evaluation backend;
- the error taxonomy (:class:`ShardExecutionError`, ...).

Submodules are resolved on attribute access (PEP 562): low-level
modules (``repro.checkpoint``, the executor backends) host injection
seams and import from this package, so eagerly importing every
submodule here would cycle back into them mid-initialization.
"""

from __future__ import annotations

from importlib import import_module

_EXPORTS = {
    "InjectedFault": "repro.resilience.errors",
    "FatalInjectedFault": "repro.resilience.errors",
    "PoolBrokenError": "repro.resilience.errors",
    "ShardExecutionError": "repro.resilience.errors",
    "ShardTimeoutError": "repro.resilience.errors",
    "FAULT_REGISTRY": "repro.resilience.faults",
    "FaultPlan": "repro.resilience.faults",
    "ALWAYS": "repro.resilience.faults",
    "install_fault": "repro.resilience.injection",
    "clear_fault": "repro.resilience.injection",
    "active_fault": "repro.resilience.injection",
    "inject_fault": "repro.resilience.injection",
    "maybe_inject": "repro.resilience.injection",
    "RetryPolicy": "repro.resilience.retry",
    "is_retryable": "repro.resilience.retry",
    "FailureRecord": "repro.resilience.quarantine",
    "FailureLog": "repro.resilience.quarantine",
    "ResilientExecutor": "repro.resilience.executor",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        ) from None
    return getattr(import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
