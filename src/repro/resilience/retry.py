"""Retry policy: deterministic backoff plus explicit classification.

One :class:`RetryPolicy` shape serves all three granularities — shards
(:class:`repro.resilience.executor.ResilientExecutor`), campaign cells
(:class:`repro.campaign.runner.CampaignRunner`), and adaptive rounds
(:class:`repro.adaptive.loop.AdaptiveLoop`).  The backoff schedule is
a pure function of the attempt number; no wall-clock value ever enters
an identity key, so retried runs stay byte-identical to clean runs and
manifests written with or without retries resume interchangeably.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Tuple

from repro.checkpoint import CheckpointKeyError
from repro.resilience.errors import (
    FatalInjectedFault,
    InjectedFault,
    PoolBrokenError,
    ShardExecutionError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to attempt a unit of work, and how long to wait.

    ``max_attempts`` counts *total* attempts (1 = no retries).  The
    delay before re-running attempt ``n + 1`` is ``backoff_base *
    backoff_factor ** (n - 1)`` capped at ``backoff_max`` — fully
    determined by the attempt number.  The default base of ``0`` means
    immediate retries, which is right for in-machine pools; a network
    executor would raise it.
    """

    max_attempts: int = 3
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 60.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be at least 1")

    @staticmethod
    def from_retries(retries: int, backoff: float = 0.0) -> "RetryPolicy":
        """The CLI spelling: ``--retries N`` means N retries after the
        first attempt."""
        if retries < 0:
            raise ValueError("retries must be non-negative")
        return RetryPolicy(max_attempts=retries + 1, backoff_base=backoff)

    def delay(self, attempt: int) -> float:
        """Seconds to wait after ``attempt`` failed (1-based)."""
        if self.backoff_base <= 0:
            return 0.0
        return min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )

    def schedule(self) -> Tuple[float, ...]:
        """The full deterministic delay schedule, one entry per retry."""
        return tuple(self.delay(attempt) for attempt in range(1, self.max_attempts))

    def identity(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_max": self.backoff_max,
        }


def is_retryable(error: BaseException) -> bool:
    """Explicit retryable-vs-fatal classification.

    Retryable: injected transient faults, shard execution failures
    (including timeouts), broken pools, OS-level errors — anything a
    fresh attempt on healthy infrastructure could fix.  Fatal:
    :class:`FatalInjectedFault`, checkpoint key mismatches, and
    configuration errors (``ValueError``/``TypeError``) — retrying
    cannot change the answer.  ``KeyboardInterrupt``/``SystemExit``
    never reach this function: they are ``BaseException`` and no retry
    loop catches them.
    """
    if isinstance(error, FatalInjectedFault):
        return False
    if isinstance(error, ShardExecutionError):
        return not error.fatal
    if isinstance(error, (InjectedFault, PoolBrokenError, BrokenExecutor)):
        return True
    if isinstance(error, CheckpointKeyError):
        return False
    if isinstance(error, (TimeoutError, ConnectionError, OSError)):
        return True
    if isinstance(error, (ValueError, TypeError)):
        return False
    return isinstance(error, RuntimeError)
