"""The error taxonomy of the fault-tolerant execution layer.

Two axes matter.  *Where* an error carries identity: a
:class:`ShardExecutionError` names the shard that failed (so retry and
quarantine operate per shard), while a :class:`PoolBrokenError` has no
shard attribution (the pool itself died, every in-flight shard is
lost).  And *whether* it is worth retrying: anything transient —
injected faults, timeouts, broken pools — is retryable;
:class:`FatalInjectedFault` (and configuration errors like
``ValueError``) are not.  The classification itself lives in
:func:`repro.resilience.retry.is_retryable`.

Everything here must survive a ``fork`` boundary: worker processes
raise these and the pool pickles them back to the parent, hence the
explicit ``__reduce__`` implementations.
"""

from __future__ import annotations

from typing import Optional, Tuple


class InjectedFault(RuntimeError):
    """A deliberately injected, *retryable* fault.

    Raised by fault plans (:mod:`repro.resilience.faults`) to simulate
    transient infrastructure failures — worker crashes, killed
    processes, flaky I/O.  The retry layer treats it exactly like a
    real transient error.
    """


class FatalInjectedFault(InjectedFault):
    """An injected fault classified as *fatal*: never retried.

    Simulates errors that retrying cannot fix (corrupt configuration,
    deterministic poison input with no quarantine path) so tests can
    pin the fatal classification branch.
    """


class PoolBrokenError(RuntimeError):
    """The worker pool itself failed, losing every in-flight shard.

    Carries no shard attribution — the resilient executor responds by
    re-sweeping all pending shards, and repeated breakage triggers the
    executor downgrade chain (pool backend → serial).
    """


class ShardExecutionError(RuntimeError):
    """A typed wrapper for any error raised while evaluating one shard.

    Pool backends otherwise surface worker errors as bare exceptions
    with no indication of *which* shard died; this wrapper pins the
    ``(start_id, count)`` descriptor so the resilient layer can retry
    or quarantine exactly the failing shard, and so a human reading a
    traceback knows which test-id window to reproduce.
    """

    def __init__(self, shard: Tuple[int, int], cause: str = "", fatal: bool = False):
        self.shard = (int(shard[0]), int(shard[1]))
        self.start_id, self.count = self.shard
        self.cause = cause
        self.fatal = fatal
        super().__init__(
            "shard (start_id=%d, count=%d) failed: %s"
            % (self.start_id, self.count, cause or "unknown error")
        )

    def __reduce__(self):
        # Cross the pool's pickle boundary with fields intact.
        return (type(self), (self.shard, self.cause, self.fatal))


class ShardTimeoutError(ShardExecutionError):
    """A shard exceeded its soft deadline and was rescheduled.

    Raised in the *parent* by the watchdog (the hung worker cannot be
    interrupted from outside); always retryable.
    """

    def __init__(
        self, shard: Tuple[int, int], timeout_seconds: Optional[float] = None
    ):
        self.timeout_seconds = timeout_seconds
        cause = "exceeded soft deadline"
        if timeout_seconds is not None:
            cause = "exceeded soft deadline of %.3gs" % timeout_seconds
        super().__init__(shard, cause=cause, fatal=False)

    def __reduce__(self):
        return (type(self), (self.shard, self.timeout_seconds))
