"""Name-addressable fault plans: the test harness for fault tolerance.

A :class:`FaultPlan` describes one deliberate failure — a worker crash
at shard N, a deterministic hang, a torn checkpoint line, a broken
pool — and :data:`FAULT_REGISTRY` makes plans addressable by name plus
JSON state, exactly like every other plugin axis.  That shape matters:
the active plan crosses the ``fork`` boundary into pool workers (and,
later, could travel to remote workers) as nothing but
``(name, state_dict)``.

Plans are consulted through injection *sites* — fixed strings naming
the seam where :func:`repro.resilience.injection.maybe_inject` is
called:

``"shard"``
    Entry of per-shard evaluation in every backend (context: ``shard``,
    ``attempt``).
``"checkpoint-append"``
    :meth:`repro.checkpoint.JsonlCheckpoint._append`, before the write
    (context: ``checkpoint``).
``"pool"``
    The resilient executor's parent process, before each pool sweep
    (context: ``executor``).
``"cell"`` / ``"round"``
    Campaign cell execution and adaptive round evaluation (context:
    ``cell``/``round_index`` plus ``attempt``).

A plan ignores every site it does not target, so exactly one plan is
active at a time and the production code needs a single seam per
layer.
"""

from __future__ import annotations

import time

from repro.registry import Registry
from repro.resilience.errors import (
    FatalInjectedFault,
    InjectedFault,
    PoolBrokenError,
)

#: Attempt count treated as "always": a plan failing this many attempts
#: never recovers, which is how permanent faults are spelled.
ALWAYS = 10**9


class FaultPlan:
    """One named, JSON-parameterized failure scenario.

    Subclasses override :meth:`inject` and store their constructor
    kwargs so :meth:`state` can round-trip the plan through
    ``FAULT_REGISTRY.create(name, **state)``.
    """

    name = "abstract"

    def state(self) -> dict:
        """The plan's JSON-serializable constructor kwargs."""
        return {}

    def inject(self, site: str, **context) -> None:
        """Consulted at every injection site; raise or delay to act."""


class ShardCrashFault(FaultPlan):
    """Worker crash while evaluating the shard starting at ``start_id``.

    Fails the shard's first ``fail_attempts`` attempts (``ALWAYS`` for
    a permanent crash that must end in quarantine); ``fatal=True``
    raises the non-retryable variant instead.  The one-transient-crash
    default is the "transient-then-healthy" scenario.
    """

    name = "shard-crash"

    def __init__(self, start_id: int = 0, fail_attempts: int = 1, fatal: bool = False):
        self.start_id = start_id
        self.fail_attempts = fail_attempts
        self.fatal = fatal

    def state(self) -> dict:
        return {
            "start_id": self.start_id,
            "fail_attempts": self.fail_attempts,
            "fatal": self.fatal,
        }

    def inject(self, site: str, **context) -> None:
        if site != "shard" or context["shard"][0] != self.start_id:
            return
        if context.get("attempt", 1) <= self.fail_attempts:
            error = FatalInjectedFault if self.fatal else InjectedFault
            raise error(
                "injected worker crash at shard start_id=%d (attempt %d)"
                % (self.start_id, context.get("attempt", 1))
            )


class ShardHangFault(FaultPlan):
    """Deterministic delay (a hang, to the watchdog) at one shard.

    Sleeps ``delay_seconds`` on the shard's first ``hang_attempts``
    attempts.  With a soft deadline below the delay, the watchdog
    cancels the sweep and reschedules; without one, the run merely
    slows down — hangs must never corrupt results.
    """

    name = "shard-hang"

    def __init__(
        self,
        start_id: int = 0,
        delay_seconds: float = 2.0,
        hang_attempts: int = 1,
    ):
        self.start_id = start_id
        self.delay_seconds = delay_seconds
        self.hang_attempts = hang_attempts

    def state(self) -> dict:
        return {
            "start_id": self.start_id,
            "delay_seconds": self.delay_seconds,
            "hang_attempts": self.hang_attempts,
        }

    def inject(self, site: str, **context) -> None:
        if site != "shard" or context["shard"][0] != self.start_id:
            return
        if context.get("attempt", 1) <= self.hang_attempts:
            time.sleep(self.delay_seconds)


class WorkerErrorFault(FaultPlan):
    """A plain exception inside ``evaluate`` (a poison test case).

    Raises an *untyped* ``RuntimeError`` — unlike :class:`InjectedFault`
    this exercises the generic wrap-and-classify path: the executor
    must surface it as a ``ShardExecutionError`` naming the shard.
    """

    name = "worker-error"

    def __init__(self, start_id: int = 0, fail_attempts: int = 1):
        self.start_id = start_id
        self.fail_attempts = fail_attempts

    def state(self) -> dict:
        return {"start_id": self.start_id, "fail_attempts": self.fail_attempts}

    def inject(self, site: str, **context) -> None:
        if site != "shard" or context["shard"][0] != self.start_id:
            return
        if context.get("attempt", 1) <= self.fail_attempts:
            raise RuntimeError(
                "injected evaluation failure at shard start_id=%d" % self.start_id
            )


class TornCheckpointFault(FaultPlan):
    """Kill the process mid-append, leaving a torn checkpoint line.

    After ``entry_index`` successful appends, the next append's bytes
    are truncated mid-line and an :class:`InjectedFault` simulates the
    SIGKILL — the scenario :class:`~repro.checkpoint.JsonlCheckpoint`
    torn-line recovery exists for.  A clean re-run against the same
    manifest must resume and produce byte-identical output.
    """

    name = "torn-checkpoint"

    def __init__(self, entry_index: int = 1):
        self.entry_index = entry_index
        self._appends = 0

    def state(self) -> dict:
        return {"entry_index": self.entry_index}

    def inject(self, site: str, **context) -> None:
        if site != "checkpoint-append":
            return
        self._appends += 1
        if self._appends != self.entry_index + 1:
            return
        checkpoint = context["checkpoint"]
        with open(checkpoint.path) as stream:
            content = stream.read()
        lines = content.splitlines()
        torn = lines[-1][: max(1, len(lines[-1]) // 2)]
        with open(checkpoint.path, "w") as stream:
            stream.write("\n".join(lines[:-1]) + "\n" + torn)
        raise InjectedFault(
            "injected kill mid-append to %s (entry %d torn)"
            % (checkpoint.path, self.entry_index + 1)
        )


class PoolBrokenFault(FaultPlan):
    """The worker pool breaks before a sweep can start.

    Consulted in the parent at the ``"pool"`` site; raises
    :class:`PoolBrokenError` for the first ``fail_attempts`` sweeps.  A
    count at or above the resilient executor's breakage threshold
    forces the downgrade chain (pool backend → serial).
    """

    name = "pool-broken"

    def __init__(self, fail_attempts: int = 2):
        self.fail_attempts = fail_attempts
        self._sweeps = 0

    def state(self) -> dict:
        return {"fail_attempts": self.fail_attempts}

    def inject(self, site: str, **context) -> None:
        if site != "pool":
            return
        self._sweeps += 1
        if self._sweeps <= self.fail_attempts:
            raise PoolBrokenError(
                "injected pool failure %d/%d (executor %s)"
                % (self._sweeps, self.fail_attempts, context.get("executor"))
            )


class CellCrashFault(FaultPlan):
    """Campaign-cell failure matched by a label substring."""

    name = "cell-crash"

    def __init__(self, match: str = "", fail_attempts: int = 1):
        self.match = match
        self.fail_attempts = fail_attempts

    def state(self) -> dict:
        return {"match": self.match, "fail_attempts": self.fail_attempts}

    def inject(self, site: str, **context) -> None:
        if site != "cell" or self.match not in context.get("cell", ""):
            return
        if context.get("attempt", 1) <= self.fail_attempts:
            raise InjectedFault(
                "injected cell failure (%r, attempt %d)"
                % (context.get("cell"), context.get("attempt", 1))
            )


class RoundCrashFault(FaultPlan):
    """Adaptive-round failure at ``round_index``."""

    name = "round-crash"

    def __init__(self, round_index: int = 0, fail_attempts: int = 1):
        self.round_index = round_index
        self.fail_attempts = fail_attempts

    def state(self) -> dict:
        return {"round_index": self.round_index, "fail_attempts": self.fail_attempts}

    def inject(self, site: str, **context) -> None:
        if site != "round" or context.get("round_index") != self.round_index:
            return
        if context.get("attempt", 1) <= self.fail_attempts:
            raise InjectedFault(
                "injected round failure (round %d, attempt %d)"
                % (self.round_index, context.get("attempt", 1))
            )


#: Registry of fault plans, addressable as name + JSON state.
FAULT_REGISTRY = Registry("fault", "injectable fault plans")
FAULT_REGISTRY.register(
    "shard-crash",
    ShardCrashFault,
    "worker crash at shard N (permanent with fail_attempts=ALWAYS)",
)
FAULT_REGISTRY.register(
    "shard-hang",
    ShardHangFault,
    "deterministic delay/hang at shard N",
)
FAULT_REGISTRY.register(
    "worker-error",
    WorkerErrorFault,
    "plain exception inside evaluate (poison test case)",
)
FAULT_REGISTRY.register(
    "torn-checkpoint",
    TornCheckpointFault,
    "kill mid-append, tearing the checkpoint's last line",
)
FAULT_REGISTRY.register(
    "pool-broken",
    PoolBrokenFault,
    "worker pool breaks before a sweep",
)
FAULT_REGISTRY.register(
    "cell-crash",
    CellCrashFault,
    "campaign cell failure matched by label substring",
)
FAULT_REGISTRY.register(
    "round-crash",
    RoundCrashFault,
    "adaptive round failure at round N",
)
