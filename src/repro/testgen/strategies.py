"""Pluggable test-case generation strategies (``GENERATOR_REGISTRY``).

The §IV-B generator shoots a fixed random budget and hopes it
distinguishes every contract atom; the evaluator then computes *exact*
per-case distinguishing sets, which a fixed budget throws away.  A
:class:`GenerationStrategy` closes the loop: it generates test cases
per test id exactly like the random generator, but may *observe* the
evaluation results of earlier rounds and steer later generation.

Three registered strategies:

- ``random`` — :class:`RandomStrategy`, the unchanged §IV-B generator
  behind the strategy interface.  Feedback is ignored; one round of
  ``random`` is byte-identical to the legacy fixed-budget pipeline.
- ``mutate`` — :class:`MutateStrategy`, mutates known-distinguishing
  cases from earlier rounds (opcode swaps within the shared pools of
  :mod:`repro.testgen.opcodes`, immediate/register re-rolls, initial
  register perturbations).  Falls back to ``random`` until feedback
  provides parents.
- ``coverage`` — :class:`CoverageStrategy`, re-aims the atom-targeting
  weights at atoms with zero or low distinguishing counts so far.

Determinism contract: every strategy derives a child RNG from
``(seed, test_id)`` and generates **per test id**, so a case depends
only on ``(seed, test_id, state)`` — never on sibling cases or which
worker generated it.  ``state()`` snapshots the feedback state as a
JSON-serializable dict and ``restore()`` reloads it, which is how the
adaptive loop ships strategies to executor workers (by registry name
plus state) and resumes them from a round checkpoint.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from bisect import bisect_left
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.contracts.template import ContractTemplate
from repro.isa.instructions import Instruction, Opcode, OPCODE_INFO
from repro.isa.program import Program
from repro.isa.state import ArchState
from repro.registry import Registry
from repro.testgen.generator import GeneratorConfig, TestCaseGenerator, child_rng
from repro.testgen.opcodes import SHIFTS_IMM, UPPER, mutation_pool
from repro.testgen.testcase import TestCase


class GenerationStrategy(ABC):
    """A test-case generator that may learn from evaluation feedback.

    Subclasses implement :meth:`generate_case`; the iteration helpers
    and the feedback/state surface have working defaults (stateless,
    feedback-ignoring — the ``random`` behavior).
    """

    #: Registry name of the strategy.
    name = "abstract"

    def __init__(
        self,
        template: ContractTemplate,
        seed: int = 0,
        config: Optional[GeneratorConfig] = None,
    ):
        self.template = template
        self.seed = seed
        self.config = config if config is not None else GeneratorConfig()
        #: The §IV-B generator: raw material for every strategy.
        self._random = TestCaseGenerator(template, seed=seed, config=self.config)

    # -- generation (deterministic per test id) ------------------------

    @abstractmethod
    def generate_case(self, test_id: int) -> TestCase:
        """Build the test case for ``test_id`` under the current state."""

    def iter_generate(self, count: int, start_id: int = 0) -> Iterator[TestCase]:
        for offset in range(count):
            yield self.generate_case(start_id + offset)

    def generate(self, count: int, start_id: int = 0) -> List[TestCase]:
        return list(self.iter_generate(count, start_id))

    def _random_case(self, test_id: int) -> TestCase:
        """The legacy random case for ``test_id`` (the shared fallback)."""
        rng = child_rng(self.seed, test_id)
        atoms = self.template.atoms
        atom = atoms[rng.randrange(len(atoms))]
        return self._random.generate_for_atom(atom, test_id, rng)

    # -- feedback ------------------------------------------------------

    def observe(self, results: Sequence["TestCaseResultLike"]) -> None:
        """Ingest one round of evaluation results (default: ignore)."""

    # -- state snapshot (JSON-serializable) ----------------------------

    def state(self) -> dict:
        """The feedback state as a JSON-serializable dict."""
        return {}

    def restore(self, state: dict) -> None:
        """Reload a :meth:`state` snapshot (default: nothing to load)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "%s(seed=%d)" % (type(self).__name__, self.seed)


class TestCaseResultLike:
    """Structural type of one feedback item: anything exposing
    ``test_id``, ``attacker_distinguishable`` and
    ``distinguishing_atom_ids`` (i.e.
    :class:`repro.evaluation.results.TestCaseResult`)."""

    __test__ = False  # not a pytest test class despite the name


class RandomStrategy(GenerationStrategy):
    """The §IV-B fixed-budget generator behind the strategy interface.

    Byte-identical to ``TestCaseGenerator.iter_generate`` for the same
    seed; feedback is ignored, so every round extends the same stream.
    """

    name = "random"

    def generate_case(self, test_id: int) -> TestCase:
        return self._random_case(test_id)


class CoverageStrategy(GenerationStrategy):
    """Aims generation at atoms with low distinguishing counts.

    The target atom of each case is drawn with weight
    ``1 / (1 + count)**2`` where ``count`` is how many evaluated test
    cases the atom has distinguished so far — uncovered atoms dominate
    the draw, already-saturated atoms are rarely re-targeted.  With no
    feedback yet the weights are uniform (a weighted variant of the
    random stream, not the identical stream).
    """

    name = "coverage"

    def __init__(self, template, seed=0, config=None):
        super().__init__(template, seed, config)
        self._counts: Dict[int, int] = {}
        self._cumulative: Optional[List[float]] = None

    def generate_case(self, test_id: int) -> TestCase:
        rng = child_rng(self.seed, test_id)
        atom = self._pick_atom(rng)
        return self._random.generate_for_atom(atom, test_id, rng)

    def _pick_atom(self, rng: random.Random):
        if self._cumulative is None:
            cumulative = []
            total = 0.0
            for atom in self.template.atoms:
                weight = 1.0 / (1.0 + self._counts.get(atom.atom_id, 0)) ** 2
                total += weight
                cumulative.append(total)
            self._cumulative = cumulative
        point = rng.random() * self._cumulative[-1]
        return self.template.atoms[bisect_left(self._cumulative, point)]

    def observe(self, results) -> None:
        for result in results:
            for atom_id in result.distinguishing_atom_ids:
                self._counts[atom_id] = self._counts.get(atom_id, 0) + 1
        self._cumulative = None

    def state(self) -> dict:
        return {
            "counts": {
                str(atom_id): count for atom_id, count in sorted(self._counts.items())
            }
        }

    def restore(self, state: dict) -> None:
        self._counts = {
            int(atom_id): int(count)
            for atom_id, count in state.get("counts", {}).items()
        }
        self._cumulative = None


#: Parents kept by the mutate strategy (most recent win).
MAX_PARENTS = 128

#: Mutation operators, drawn uniformly per case.
_MUTATIONS = ("regs", "opcode", "imm", "register")


class MutateStrategy(GenerationStrategy):
    """Mutates known-distinguishing cases from earlier rounds.

    A mutation picks a parent case and perturbs it at a *shared*
    position (where both programs carry the same instruction) or in the
    initial register file, so the two programs still differ only in the
    parent's middle section — the mutant probes the same leakage
    neighborhood under different surrounding data.  Opcode swaps stay
    inside the shared same-format pools of :mod:`repro.testgen.opcodes`.
    Until feedback provides parents the strategy generates the random
    stream.
    """

    name = "mutate"

    def __init__(self, template, seed=0, config=None):
        super().__init__(template, seed, config)
        self._parents: List[dict] = []

    def generate_case(self, test_id: int) -> TestCase:
        if not self._parents:
            return self._random_case(test_id)
        rng = child_rng(self.seed, test_id)
        parent = self._parents[rng.randrange(len(self._parents))]
        return self._mutate(parent, test_id, rng)

    # -- mutation ------------------------------------------------------

    def _mutate(self, parent: dict, test_id: int, rng: random.Random) -> TestCase:
        instructions_a = [_instruction_from_list(raw) for raw in parent["a"]]
        instructions_b = [_instruction_from_list(raw) for raw in parent["b"]]
        regs = list(parent["regs"])
        shared = [
            index
            for index in range(min(len(instructions_a), len(instructions_b)))
            if instructions_a[index] == instructions_b[index]
        ]
        mutation = _MUTATIONS[rng.randrange(len(_MUTATIONS))]
        mutated = False
        if mutation != "regs" and shared:
            position = shared[rng.randrange(len(shared))]
            replacement = self._mutate_instruction(
                instructions_a[position], mutation, rng
            )
            if replacement is not None:
                instructions_a[position] = replacement
                instructions_b[position] = replacement
                mutated = True
        if not mutated:
            # Initial-state perturbation: always applicable, and the
            # fallback when the drawn operator had no legal site.
            index = rng.randint(1, 31)
            regs[index] = (
                rng.randrange(0x100, 0x8000)
                if rng.random() < self.config.address_like_probability
                else rng.getrandbits(32)
            )
        return TestCase(
            test_id=test_id,
            program_a=Program(instructions_a, parent["base"]),
            program_b=Program(instructions_b, parent["base"]),
            initial_state=ArchState(pc=parent["pc"], regs=regs),
            targeted_atom_id=parent.get("atom"),
        )

    @staticmethod
    def _mutate_instruction(
        instruction: Instruction, mutation: str, rng: random.Random
    ) -> Optional[Instruction]:
        info = OPCODE_INFO[instruction.opcode]
        if mutation == "opcode":
            pool = mutation_pool(instruction.opcode)
            alternatives = [
                opcode for opcode in pool if opcode is not instruction.opcode
            ]
            if not alternatives:
                return None
            return TestCaseGenerator._rebuild(
                instruction, alternatives[rng.randrange(len(alternatives))]
            )
        if mutation == "imm":
            # Control-flow offsets are left alone: re-rolling them could
            # jump outside the program.
            if not info.has_imm or info.is_control:
                return None
            if instruction.opcode in SHIFTS_IMM:
                imm = rng.randint(0, 31)
            elif instruction.opcode in UPPER:
                imm = rng.getrandbits(20)
            else:
                imm = rng.randint(-2048, 2047)
            return Instruction(
                instruction.opcode,
                rd=instruction.rd,
                rs1=instruction.rs1,
                rs2=instruction.rs2,
                imm=imm,
            )
        if mutation == "register":
            fields = [
                name
                for name, applicable in (
                    ("rd", info.has_rd),
                    ("rs1", info.has_rs1 and not info.is_control),
                    ("rs2", info.has_rs2),
                )
                if applicable
            ]
            if not fields:
                return None
            field_name = fields[rng.randrange(len(fields))]
            replacement = rng.randint(1, 31)
            values = {
                "rd": instruction.rd,
                "rs1": instruction.rs1,
                "rs2": instruction.rs2,
            }
            values[field_name] = replacement
            return Instruction(instruction.opcode, imm=instruction.imm, **values)
        return None

    # -- feedback ------------------------------------------------------

    def observe(self, results) -> None:
        # Regenerate this round's distinguishing cases under the state
        # they were generated with (observe has not mutated it yet),
        # then fold them into the parent corpus in one step.
        fresh = [
            _case_to_dict(self.generate_case(result.test_id))
            for result in results
            if result.attacker_distinguishable
        ]
        self._parents = (self._parents + fresh)[-MAX_PARENTS:]

    def state(self) -> dict:
        return {"parents": list(self._parents)}

    def restore(self, state: dict) -> None:
        self._parents = list(state.get("parents", []))[-MAX_PARENTS:]


# -- test-case (de)serialization for strategy state --------------------


def _instruction_to_list(instruction: Instruction) -> list:
    return [
        instruction.opcode.name,
        instruction.rd,
        instruction.rs1,
        instruction.rs2,
        instruction.imm,
    ]


def _instruction_from_list(raw: Iterable) -> Instruction:
    opcode_name, rd, rs1, rs2, imm = raw
    return Instruction(Opcode[opcode_name], rd=rd, rs1=rs1, rs2=rs2, imm=imm)


def _case_to_dict(case: TestCase) -> dict:
    return {
        "id": case.test_id,
        "a": [_instruction_to_list(i) for i in case.program_a.instructions],
        "b": [_instruction_to_list(i) for i in case.program_b.instructions],
        "base": case.program_a.base_address,
        "pc": case.initial_state.pc,
        "regs": list(case.initial_state.regs),
        "atom": case.targeted_atom_id,
    }


#: All registered generation strategies, keyed by ``name``.
GENERATOR_REGISTRY = Registry("generator", "test-case generation strategies")
GENERATOR_REGISTRY.register(
    RandomStrategy.name,
    RandomStrategy,
    description="the paper's fixed-budget random generator (feedback ignored)",
)
GENERATOR_REGISTRY.register(
    MutateStrategy.name,
    MutateStrategy,
    description="mutates known-distinguishing cases from earlier rounds",
)
GENERATOR_REGISTRY.register(
    CoverageStrategy.name,
    CoverageStrategy,
    description="targets atoms with zero or low distinguishing counts",
)
