"""The test-case generation strategy of §IV-B.

Each test case targets one contract atom and consists of two programs
built from three parts:

1. a shared random prelude (register values come from the shared
   random initial state; the prelude adds dependency context),
2. a middle section containing a random instance of the atom's
   instruction type, *varied between the two programs* so that the
   targeted atom is likely to distinguish them (e.g. a different
   immediate for ``IMM``, a producer writing the source register —
   or not — for ``RAW_RS1_n``),
3. a shared random suffix that reads the target's result to surface
   the leakage and guarantee the middle section completes.

The generator only aims; the evaluator computes the *exact* set of
distinguishing atoms for every test case afterwards, so imperfectly
targeted cases are still perfectly valid.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.contracts.atoms import ContractAtom
from repro.contracts.template import ContractTemplate
from repro.isa.instructions import (
    Instruction,
    InstructionCategory,
    Opcode,
    OPCODE_INFO,
)
from repro.isa.program import DEFAULT_BASE_ADDRESS, Program
from repro.isa.state import ArchState
from repro.testgen.opcodes import (
    BRANCH_VALUE_PAIRS as _BRANCH_VALUE_PAIRS,
    BRANCHES as _BRANCHES,
    FILLER_POOL,
    LOADS as _LOADS,
    SHIFTS_IMM as _SHIFTS_IMM,
    STORE_FOR_LOAD as _STORE_FOR_LOAD,
    UPPER as _UPPER,
    mutation_pool,
)
from repro.testgen.testcase import TestCase

_MASK32 = 0xFFFFFFFF


def child_rng(seed: int, test_id: int) -> random.Random:
    """The per-test-id RNG shared by the legacy generator and every
    ``GENERATOR_REGISTRY`` strategy.  A test case is a function of
    ``(seed, test_id, strategy state)`` — this single derivation is
    what makes shard fan-out, budget prefixes, and the random-strategy
    byte-identity sound, so both call sites must use it."""
    return random.Random((seed << 24) ^ test_id)


@dataclass
class GeneratorConfig:
    """Shape parameters of generated test programs."""

    min_prelude: int = 0
    max_prelude: int = 2
    min_suffix: int = 3
    max_suffix: int = 5
    base_address: int = DEFAULT_BASE_ADDRESS
    #: Probability that a random register value is "address-like"
    #: (small, near-aligned) rather than uniformly random.
    address_like_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.min_prelude > self.max_prelude or self.min_suffix > self.max_suffix:
            raise ValueError("min length exceeds max length")
        if self.min_suffix < 1:
            raise ValueError("suffix must contain at least one instruction")


class TestCaseGenerator:
    """Generates atom-targeted test cases from a contract template."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        template: ContractTemplate,
        seed: int = 0,
        config: Optional[GeneratorConfig] = None,
    ):
        self.template = template
        self.seed = seed
        self.config = config if config is not None else GeneratorConfig()
        self._atoms: Tuple[ContractAtom, ...] = template.atoms

    def generate(self, count: int, start_id: int = 0) -> List[TestCase]:
        """Generate ``count`` test cases (deterministic in ``seed``)."""
        return list(self.iter_generate(count, start_id))

    def iter_generate(self, count: int, start_id: int = 0) -> Iterable[TestCase]:
        for offset in range(count):
            test_id = start_id + offset
            rng = child_rng(self.seed, test_id)
            atom = self._atoms[rng.randrange(len(self._atoms))]
            yield self.generate_for_atom(atom, test_id, rng)

    def generate_for_atom(
        self, atom: ContractAtom, test_id: int, rng: random.Random
    ) -> TestCase:
        """Build one test case aimed at ``atom``."""
        state = self._random_initial_state(rng)
        prelude_length = rng.randint(self.config.min_prelude, self.config.max_prelude)
        suffix_length = rng.randint(self.config.min_suffix, self.config.max_suffix)
        target = self._random_instance(atom.opcode, rng, suffix_length)
        part2_a, part2_b = self._vary(atom, target, rng, state, suffix_length)
        prelude = [self._random_filler(rng, ()) for _ in range(prelude_length)]
        interesting = self._written_registers(part2_a) | self._written_registers(
            part2_b
        )
        suffix = [
            self._random_filler(rng, tuple(sorted(interesting)))
            for _ in range(suffix_length)
        ]
        instructions_a = prelude + part2_a + suffix
        instructions_b = prelude + part2_b + suffix
        return TestCase(
            test_id=test_id,
            program_a=Program(instructions_a, self.config.base_address),
            program_b=Program(instructions_b, self.config.base_address),
            initial_state=state,
            targeted_atom_id=atom.atom_id,
        )

    # ------------------------------------------------------------------
    # Random raw material

    def _random_initial_state(self, rng: random.Random) -> ArchState:
        regs = [0] * 32
        for index in range(1, 32):
            if rng.random() < self.config.address_like_probability:
                regs[index] = rng.randrange(0x100, 0x8000)
            else:
                regs[index] = rng.getrandbits(32)
        return ArchState(pc=self.config.base_address, regs=regs)

    def _random_instance(
        self, opcode: Opcode, rng: random.Random, suffix_length: int
    ) -> Instruction:
        """A random, safe instance of ``opcode``.

        Control-flow targets stay inside the program (forward only).
        """
        info = OPCODE_INFO[opcode]
        rd = rng.randint(1, 31) if info.has_rd else 0
        rs1 = rng.randint(1, 31) if info.has_rs1 else 0
        rs2 = rng.randint(1, 31) if info.has_rs2 else 0
        imm = 0
        if info.has_imm:
            if opcode in _SHIFTS_IMM:
                imm = rng.randint(0, 31)
            elif opcode in _BRANCHES or opcode is Opcode.JAL:
                imm = 4 * rng.randint(1, max(1, suffix_length))
            elif opcode is Opcode.JALR:
                imm = 8  # paired with an AUIPC base; see _vary
            elif opcode in _UPPER:
                imm = rng.getrandbits(20)
            else:
                imm = rng.randint(-2048, 2047)
        return Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2, imm=imm)

    _FILLER_POOL = FILLER_POOL

    def _random_filler(
        self, rng: random.Random, bias_registers: Sequence[int]
    ) -> Instruction:
        """A random non-control instruction; its sources are biased
        toward ``bias_registers`` to surface leakage of earlier results."""
        opcode = self._FILLER_POOL[rng.randrange(len(self._FILLER_POOL))]
        info = OPCODE_INFO[opcode]

        def source() -> int:
            if bias_registers and rng.random() < 0.5:
                return bias_registers[rng.randrange(len(bias_registers))]
            return rng.randint(1, 31)

        rd = rng.randint(1, 31) if info.has_rd else 0
        rs1 = source() if info.has_rs1 else 0
        rs2 = source() if info.has_rs2 else 0
        if opcode in _SHIFTS_IMM:
            imm = rng.randint(0, 31)
        elif info.has_imm:
            imm = rng.randint(-2048, 2047)
        else:
            imm = 0
        return Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2, imm=imm)

    @staticmethod
    def _written_registers(instructions: Sequence[Instruction]):
        written = set()
        for instruction in instructions:
            register = instruction.written_register
            if register is not None:
                written.add(register)
        return written

    def _scratch_registers(
        self, rng: random.Random, avoid: Sequence[int], count: int
    ) -> List[int]:
        pool = [index for index in range(1, 32) if index not in set(avoid)]
        rng.shuffle(pool)
        return pool[:count]

    # ------------------------------------------------------------------
    # Per-source variation strategies

    def _vary(
        self,
        atom: ContractAtom,
        target: Instruction,
        rng: random.Random,
        state: ArchState,
        suffix_length: int,
    ) -> Tuple[List[Instruction], List[Instruction]]:
        """Build the two middle sections (part 2) for ``atom``."""
        source = atom.source
        if source == "OP":
            return self._vary_opcode(target, rng)
        if source in ("RD", "RS1", "RS2"):
            return self._vary_register_index(target, source, rng)
        if source == "IMM":
            return self._vary_immediate(target, rng, suffix_length)
        if source == "REG_RS1":
            return self._vary_register_value(target, target.rs1, rng)
        if source == "REG_RS2":
            return self._vary_register_value(target, target.rs2, rng)
        if source == "IS_ZERO_RS1":
            return self._vary_zero_value(target, target.rs1, rng)
        if source == "IS_ZERO_RS2":
            return self._vary_zero_value(target, target.rs2, rng)
        if source in ("REG_RD", "MEM_R_DATA"):
            return self._vary_result_value(target, rng)
        if source == "MEM_W_DATA":
            return self._vary_register_value(target, target.rs2, rng)
        if source in ("MEM_R_ADDR", "MEM_W_ADDR"):
            return self._vary_address(target, rng, alignment_delta=0)
        if source == "IS_WORD_ALIGNED":
            return self._vary_address(
                target, rng, alignment_delta=rng.choice((1, 2, 3))
            )
        if source == "IS_HALF_ALIGNED":
            return self._vary_address(target, rng, alignment_delta=3)
        if source == "BRANCH_TAKEN":
            return self._vary_branch_outcome(target, rng)
        if source == "NEW_PC":
            return self._vary_new_pc(target, rng, suffix_length)
        prefix = source.rpartition("_")[0]
        if prefix in ("RAW_RS1", "RAW_RS2", "RAW_RD", "WAW"):
            distance = int(source.rpartition("_")[2])
            return self._vary_dependency(target, prefix, distance, rng)
        raise ValueError("no variation strategy for source %r" % (source,))

    def _finalize_target(self, target: Instruction, rng: random.Random):
        """Wrap targets that need setup (JALR needs an in-program base)."""
        if target.opcode is Opcode.JALR:
            base = self._scratch_registers(rng, (target.rd, 0), 1)[0]
            setup = Instruction(Opcode.AUIPC, rd=base, imm=0)
            target = Instruction(
                Opcode.JALR, rd=target.rd, rs1=base, imm=target.imm
            )
            return [setup], target
        return [], target

    def _vary_opcode(self, target: Instruction, rng: random.Random):
        pool = mutation_pool(target.opcode)
        alternatives = [opcode for opcode in pool if opcode is not target.opcode]
        setup, target = self._finalize_target(target, rng)
        if not alternatives:
            # JAL/JALR have no same-format sibling: swap in an
            # upper-immediate instruction with a compatible rd.
            mutated = Instruction(Opcode.AUIPC, rd=max(target.rd, 1), imm=1)
            return setup + [target], setup + [mutated]
        alternative = alternatives[rng.randrange(len(alternatives))]
        mutated = self._rebuild(target, alternative)
        return setup + [target], setup + [mutated]

    @staticmethod
    def _rebuild(target: Instruction, opcode: Opcode) -> Instruction:
        """Re-type ``target`` as ``opcode``, clamping the immediate."""
        info = OPCODE_INFO[opcode]
        imm = target.imm
        if opcode in _SHIFTS_IMM:
            imm &= 31
        return Instruction(
            opcode,
            rd=target.rd if info.has_rd else 0,
            rs1=target.rs1 if info.has_rs1 else 0,
            rs2=target.rs2 if info.has_rs2 else 0,
            imm=imm if info.has_imm else 0,
        )

    def _vary_register_index(self, target: Instruction, field_name: str, rng):
        setup, target = self._finalize_target(target, rng)
        current = getattr(target, field_name.lower())
        if field_name == "RS1" and target.opcode is Opcode.JALR:
            # Re-pointing JALR's base register would jump out of the
            # program; vary the link register instead of the base.
            field_name, current = "RD", target.rd
        replacement = current
        while replacement == current:
            replacement = rng.randint(1, 31)
        mutated = Instruction(
            target.opcode,
            rd=replacement if field_name == "RD" else target.rd,
            rs1=replacement if field_name == "RS1" else target.rs1,
            rs2=replacement if field_name == "RS2" else target.rs2,
            imm=target.imm,
        )
        return setup + [target], setup + [mutated]

    def _vary_immediate(self, target: Instruction, rng, suffix_length: int):
        setup, target = self._finalize_target(target, rng)
        opcode = target.opcode
        if opcode in _SHIFTS_IMM:
            other = target.imm
            while other == target.imm:
                other = rng.randint(0, 31)
        elif opcode in _BRANCHES or opcode is Opcode.JAL:
            choices = [4 * k for k in range(1, max(2, suffix_length + 1))]
            choices = [c for c in choices if c != target.imm]
            other = choices[rng.randrange(len(choices))]
        elif opcode is Opcode.JALR:
            other = target.imm + 4 if target.imm <= 8 else target.imm - 4
        elif opcode in _UPPER:
            other = target.imm
            while other == target.imm:
                other = rng.getrandbits(20)
        else:
            other = target.imm
            while other == target.imm:
                other = rng.randint(-2048, 2047)
        mutated = Instruction(
            opcode, rd=target.rd, rs1=target.rs1, rs2=target.rs2, imm=other
        )
        return setup + [target], setup + [mutated]

    def _loader(self, register: int, value: int, rng) -> List[Instruction]:
        """Instructions setting ``register`` to ``value`` (or to a
        12-bit fragment of it when a single ADDI suffices)."""
        if -2048 <= value <= 2047:
            return [Instruction(Opcode.ADDI, rd=register, rs1=0, imm=value)]
        upper = (value >> 12) & 0xFFFFF
        lower = value & 0xFFF
        if lower >= 0x800:
            upper = (upper + 1) & 0xFFFFF
            lower -= 0x1000
        sequence = [Instruction(Opcode.LUI, rd=register, imm=upper)]
        if lower:
            sequence.append(
                Instruction(Opcode.ADDI, rd=register, rs1=register, imm=lower)
            )
        return sequence

    def _vary_register_value(self, target: Instruction, register: int, rng):
        setup, target = self._finalize_target(target, rng)
        if register == 0:
            # x0 cannot vary; fall back to an index mutation.
            return self._vary_register_index(target, "RD", rng)
        if (
            target.info.is_memory
            and register == target.rs1
            and rng.random() < 0.5
        ):
            # Vary the base register but compensate in the immediate so
            # the *effective address* stays equal: separates REG_RS1
            # from MEM_R_ADDR leakage (without such cases the two atoms
            # are observationally identical on every test case).
            compensated = self._vary_base_compensated(target, rng, setup)
            if compensated is not None:
                return compensated
        value_a = rng.getrandbits(32) if rng.random() < 0.5 else rng.randrange(0, 4096)
        value_b = value_a
        while value_b == value_a:
            value_b = (
                rng.getrandbits(32) if rng.random() < 0.5 else rng.randrange(0, 4096)
            )
        part_a = self._loader(register, value_a, rng) + setup + [target]
        part_b = self._loader(register, value_b, rng) + setup + [target]
        return self._pad_to_equal_length(part_a, part_b)

    def _vary_base_compensated(self, target: Instruction, rng, setup):
        """Two programs accessing the *same* address through different
        base-register values (immediate compensates the delta)."""
        delta = 4 * rng.randint(1, 64)
        if target.imm - delta >= -2048:
            imm_b = target.imm - delta
        elif target.imm + delta <= 2047:
            imm_b, delta = target.imm + delta, -delta
        else:
            return None
        address = 4 * rng.randrange(0x40, 0x400)
        value_a = (address - target.imm) & _MASK32
        value_b = (address - imm_b) & _MASK32
        mutated = Instruction(
            target.opcode,
            rd=target.rd,
            rs1=target.rs1,
            rs2=target.rs2,
            imm=imm_b,
        )
        part_a = self._loader(target.rs1, value_a, rng) + setup + [target]
        part_b = self._loader(target.rs1, value_b, rng) + setup + [mutated]
        return self._pad_to_equal_length(part_a, part_b)

    def _vary_zero_value(self, target: Instruction, register: int, rng):
        """Zero vs non-zero operand value (IS_ZERO_RS* refinement)."""
        setup, target = self._finalize_target(target, rng)
        if register == 0:
            return self._vary_register_index(target, "RD", rng)
        nonzero = rng.randrange(1, 4096)
        part_a = self._loader(register, 0, rng) + setup + [target]
        part_b = self._loader(register, nonzero, rng) + setup + [target]
        return self._pad_to_equal_length(part_a, part_b)

    def _vary_result_value(self, target: Instruction, rng):
        """Vary the target's *result* (REG_RD / MEM_R_DATA)."""
        opcode = target.opcode
        if opcode in _LOADS:
            # Store different data to the loaded address beforehand.
            scratch = self._scratch_registers(rng, (target.rd, target.rs1), 1)[0]
            store_opcode = _STORE_FOR_LOAD[opcode]
            value_a, value_b = rng.getrandbits(8), rng.getrandbits(8)
            while value_b == value_a:
                value_b = rng.getrandbits(8)
            store = Instruction(
                store_opcode, rs1=target.rs1, rs2=scratch, imm=target.imm
            )
            part_a = self._loader(scratch, value_a, rng) + [store, target]
            part_b = self._loader(scratch, value_b, rng) + [store, target]
            return self._pad_to_equal_length(part_a, part_b)
        info = OPCODE_INFO[opcode]
        if info.has_rs1 and opcode is not Opcode.JALR:
            return self._vary_register_value(target, target.rs1, rng)
        if info.has_imm:
            return self._vary_immediate(target, rng, suffix_length=2)
        return self._vary_register_index(target, "RD", rng)

    def _vary_address(self, target: Instruction, rng, alignment_delta: int):
        """Vary a memory access's address.

        ``alignment_delta == 0`` keeps the alignment equal (pure
        address variation); otherwise the second program's address is
        offset by ``alignment_delta`` bytes.

        Pure address variations on loads are prefixed with a *warming*
        access to the first address: on cores with address-indexed
        state (caches), the first program then reuses warm state while
        the second does not — the reuse pattern that makes address
        leakage observable at all (a cold cache treats every single
        access alike).
        """
        base = 4 * rng.randrange(0x40, 0x400)
        if alignment_delta == 0:
            address_a, address_b = base, base + 4 * rng.randint(1, 64)
        else:
            address_a, address_b = base, base + alignment_delta
        register = target.rs1
        warm: List[Instruction] = []
        if alignment_delta == 0 and target.info.category is InstructionCategory.LOAD:
            warm_base, warm_rd = self._scratch_registers(
                rng, (register, target.rd, target.rs2), 2
            )
            warm = self._loader(warm_base, address_a & ~0x3, rng) + [
                Instruction(Opcode.LW, rd=warm_rd, rs1=warm_base, imm=0)
            ]
        part_a = self._loader(register, (address_a - target.imm) & _MASK32, rng)
        part_b = self._loader(register, (address_b - target.imm) & _MASK32, rng)
        part_a, part_b = self._pad_to_equal_length(
            warm + part_a + [target], warm + part_b + [target]
        )
        return part_a, part_b

    def _vary_branch_outcome(self, target: Instruction, rng):
        true_pair, false_pair = _BRANCH_VALUE_PAIRS[target.opcode]
        if target.rs1 == target.rs2:
            # Equal registers cannot take different values; re-point rs2.
            rs2 = self._scratch_registers(rng, (target.rs1,), 1)[0]
            target = Instruction(
                target.opcode, rs1=target.rs1, rs2=rs2, imm=target.imm
            )
        taken_first = rng.random() < 0.5
        pair_a = true_pair if taken_first else false_pair
        pair_b = false_pair if taken_first else true_pair
        part_a = (
            self._loader(target.rs1, pair_a[0], rng)
            + self._loader(target.rs2, pair_a[1], rng)
            + [target]
        )
        part_b = (
            self._loader(target.rs1, pair_b[0], rng)
            + self._loader(target.rs2, pair_b[1], rng)
            + [target]
        )
        return self._pad_to_equal_length(part_a, part_b)

    def _vary_new_pc(self, target: Instruction, rng, suffix_length: int):
        opcode = target.opcode
        if opcode in _BRANCHES:
            # Make the branch taken in both programs, vary the target.
            true_pair, _false = _BRANCH_VALUE_PAIRS[opcode]
            if target.rs1 == target.rs2:
                rs2 = self._scratch_registers(rng, (target.rs1,), 1)[0]
                target = Instruction(opcode, rs1=target.rs1, rs2=rs2, imm=target.imm)
            loaders = self._loader(target.rs1, true_pair[0], rng) + self._loader(
                target.rs2, true_pair[1], rng
            )
            offsets = [4 * k for k in range(1, max(3, suffix_length + 1))]
            offset_a = offsets[rng.randrange(len(offsets))]
            offset_b = offset_a
            while offset_b == offset_a:
                offset_b = offsets[rng.randrange(len(offsets))]
            taken_a = Instruction(opcode, rs1=target.rs1, rs2=target.rs2, imm=offset_a)
            taken_b = Instruction(opcode, rs1=target.rs1, rs2=target.rs2, imm=offset_b)
            return loaders + [taken_a], loaders + [taken_b]
        # JAL / JALR: vary the jump offset.
        setup, target = self._finalize_target(target, rng)
        return self._vary_immediate(target, rng, suffix_length)

    _NEUTRAL_FILLER_BASE = 20

    def _vary_dependency(self, target: Instruction, prefix: str, distance: int, rng):
        """Create / omit a register dependency at exactly ``distance``.

        Both variants leave the architectural state unchanged (the
        producer is a self-move), so ideally *only* dependency atoms
        and the producer's encoding atoms distinguish the programs.
        """
        if prefix == "RAW_RS1":
            register = target.rs1
        elif prefix == "RAW_RS2":
            register = target.rs2
        else:
            register = target.rd
        scratch_pool = self._scratch_registers(
            rng, (register, target.rd, target.rs1, target.rs2), distance + 1
        )
        scratch = scratch_pool[0]
        if register == 0:
            register = scratch  # degenerate; still a valid random case
        if prefix == "RAW_RD":
            # WAR: the producer *reads* the target's destination.
            producer_a = Instruction(Opcode.AND, rd=scratch, rs1=register, rs2=0)
            producer_b = Instruction(Opcode.AND, rd=scratch, rs1=scratch, rs2=0)
        else:
            # RAW/WAW: the producer *writes* the relevant register
            # with its own value (architecturally a no-op).
            producer_a = Instruction(Opcode.ADD, rd=register, rs1=register, rs2=0)
            producer_b = Instruction(Opcode.ADD, rd=scratch, rs1=scratch, rs2=0)
        fillers = [
            Instruction(Opcode.ADD, rd=reg, rs1=reg, rs2=0)
            for reg in scratch_pool[1:distance]
        ]
        part_a = [producer_a] + fillers + [target]
        part_b = [producer_b] + fillers + [target]
        return part_a, part_b

    @staticmethod
    def _pad_to_equal_length(part_a, part_b):
        """Pad the shorter part with architectural no-ops so both
        programs have identical instruction counts."""
        nop = Instruction(Opcode.ADDI, rd=0, rs1=0, imm=0)
        while len(part_a) < len(part_b):
            part_a = [nop] + part_a
        while len(part_b) < len(part_a):
            part_b = [nop] + part_b
        return part_a, part_b
