"""Shared opcode pools for test-case generation and mutation.

One table per instruction shape, used by both the random §IV-B
generator (:mod:`repro.testgen.generator`) and the adaptive ``mutate``
strategy (:mod:`repro.testgen.strategies`): an opcode's *pool* is the
set of same-format siblings it may be swapped with while keeping the
surrounding program well-formed (operand fields and immediate ranges
carry over unchanged, modulo clamping).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.isa.instructions import Opcode

R_ALU: Tuple[Opcode, ...] = (
    Opcode.ADD,
    Opcode.SUB,
    Opcode.SLL,
    Opcode.SLT,
    Opcode.SLTU,
    Opcode.XOR,
    Opcode.SRL,
    Opcode.SRA,
    Opcode.OR,
    Opcode.AND,
)
I_ALU: Tuple[Opcode, ...] = (
    Opcode.ADDI,
    Opcode.SLTI,
    Opcode.SLTIU,
    Opcode.XORI,
    Opcode.ORI,
    Opcode.ANDI,
)
SHIFTS_IMM: Tuple[Opcode, ...] = (Opcode.SLLI, Opcode.SRLI, Opcode.SRAI)
LOADS: Tuple[Opcode, ...] = (Opcode.LB, Opcode.LH, Opcode.LW, Opcode.LBU, Opcode.LHU)
STORES: Tuple[Opcode, ...] = (Opcode.SB, Opcode.SH, Opcode.SW)
BRANCHES: Tuple[Opcode, ...] = (
    Opcode.BEQ,
    Opcode.BNE,
    Opcode.BLT,
    Opcode.BGE,
    Opcode.BLTU,
    Opcode.BGEU,
)
MULS: Tuple[Opcode, ...] = (Opcode.MUL, Opcode.MULH, Opcode.MULHSU, Opcode.MULHU)
DIVS: Tuple[Opcode, ...] = (Opcode.DIV, Opcode.DIVU, Opcode.REM, Opcode.REMU)
UPPER: Tuple[Opcode, ...] = (Opcode.LUI, Opcode.AUIPC)

#: Every same-format pool, in canonical order.
ALL_POOLS: Tuple[Tuple[Opcode, ...], ...] = (
    R_ALU,
    I_ALU,
    SHIFTS_IMM,
    LOADS,
    STORES,
    BRANCHES,
    MULS,
    DIVS,
    UPPER,
)

#: Opcode -> its same-format pool (opcodes outside any pool, i.e. the
#: jumps, are absent — callers fall back to an encoding-level mutation).
MUTATION_POOLS: Dict[Opcode, Tuple[Opcode, ...]] = {
    opcode: pool for pool in ALL_POOLS for opcode in pool
}

#: Store matching the width of each load, for read-data tests.
STORE_FOR_LOAD: Dict[Opcode, Opcode] = {
    Opcode.LB: Opcode.SB,
    Opcode.LBU: Opcode.SB,
    Opcode.LH: Opcode.SH,
    Opcode.LHU: Opcode.SH,
    Opcode.LW: Opcode.SW,
}

#: (values making the condition true, values making it false) per branch.
BRANCH_VALUE_PAIRS: Dict[Opcode, Tuple[Tuple[int, int], Tuple[int, int]]] = {
    Opcode.BEQ: ((5, 5), (5, 6)),
    Opcode.BNE: ((5, 6), (5, 5)),
    Opcode.BLT: ((3, 9), (9, 3)),
    Opcode.BGE: ((9, 3), (3, 9)),
    Opcode.BLTU: ((3, 9), (9, 3)),
    Opcode.BGEU: ((9, 3), (3, 9)),
}

#: Non-control opcodes safe as random filler instructions.
FILLER_POOL: Tuple[Opcode, ...] = R_ALU + I_ALU + SHIFTS_IMM + MULS + (
    Opcode.LW,
    Opcode.SW,
)


def mutation_pool(opcode: Opcode) -> Tuple[Opcode, ...]:
    """The same-format pool of ``opcode`` (empty for the jumps)."""
    return MUTATION_POOLS.get(opcode, ())
