"""Test-case container."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa.program import Program
from repro.isa.state import ArchState


@dataclass
class TestCase:
    """A pair of programs from equal initial states (§III-B).

    Formally a test case is a pair of microarchitectural states with
    equal microarchitectural parts; here both programs start from the
    same (randomly initialized) architectural register file and an
    all-zero memory, and every core model resets its microarchitectural
    state per simulation, so the equality holds by construction.

    ``targeted_atom_id`` records which contract atom the generator was
    aiming at — diagnostic metadata only; evaluation computes the exact
    distinguishing set regardless.
    """

    __test__ = False  # not a pytest test class despite the name

    test_id: int
    program_a: Program
    program_b: Program
    initial_state: ArchState
    targeted_atom_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.program_a.base_address != self.program_b.base_address:
            raise ValueError("programs must share a base address")

    @property
    def differing_positions(self):
        """Instruction indices where the two programs differ."""
        length = max(len(self.program_a), len(self.program_b))
        positions = []
        for index in range(length):
            a = self.program_a[index] if index < len(self.program_a) else None
            b = self.program_b[index] if index < len(self.program_b) else None
            if a != b:
                positions.append(index)
        return positions

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "TestCase(#%d, %d/%d instructions, atom=%s)" % (
            self.test_id,
            len(self.program_a),
            len(self.program_b),
            self.targeted_atom_id,
        )
