"""Atom-targeted test-case generation (§III-B, §IV-B).

A test case is a pair of programs with a shared, fixed initial
architectural state; the two programs differ only in their middle
section, which is constructed so that one specific contract atom is
likely to distinguish them.
"""

from repro.testgen.testcase import TestCase
from repro.testgen.generator import GeneratorConfig, TestCaseGenerator

__all__ = ["GeneratorConfig", "TestCase", "TestCaseGenerator"]
