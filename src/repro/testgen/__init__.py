"""Atom-targeted test-case generation (§III-B, §IV-B).

A test case is a pair of programs with a shared, fixed initial
architectural state; the two programs differ only in their middle
section, which is constructed so that one specific contract atom is
likely to distinguish them.

Generation strategies are plugins: :data:`GENERATOR_REGISTRY` maps
string keys (``"random"``, ``"mutate"``, ``"coverage"``) to
:class:`GenerationStrategy` factories, following the same convention
as the core/attacker/solver registries.  The adaptive synthesis loop
(:mod:`repro.adaptive`) feeds evaluation results back into a strategy
between rounds; the classic fixed-budget pipeline is the one-round
``random`` special case.
"""

from repro.testgen.testcase import TestCase
from repro.testgen.generator import GeneratorConfig, TestCaseGenerator
from repro.testgen.strategies import (
    GENERATOR_REGISTRY,
    CoverageStrategy,
    GenerationStrategy,
    MutateStrategy,
    RandomStrategy,
)

__all__ = [
    "GENERATOR_REGISTRY",
    "CoverageStrategy",
    "GenerationStrategy",
    "GeneratorConfig",
    "MutateStrategy",
    "RandomStrategy",
    "TestCase",
    "TestCaseGenerator",
]
