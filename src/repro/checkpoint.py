"""Append-only JSONL checkpoints bound to an identity key.

Both resumable layers of the toolchain checkpoint the same way: an
append-only JSONL file whose first line is a header binding the file
to an identity key, and whose every further line records one completed
unit of work — an evaluation shard
(:class:`repro.evaluation.backends.ShardManifest`) or a campaign cell
(:class:`repro.campaign.CampaignManifest`).  :class:`JsonlCheckpoint`
owns the shared mechanics so the two manifests cannot drift on the
robustness rules:

- a header key mismatch raises — silently mixing two corpora (or two
  campaigns) in one checkpoint file is the stale-cache bug the dataset
  cache key exists to prevent;
- a truncated *final* line (the run died mid-append) is discarded and
  rewritten away, so the next append lands on a clean line boundary;
  corruption anywhere else raises;
- every append is flushed immediately, so a run killed at 95% keeps
  95% of its work.

Subclasses define the entry payload: :meth:`_accept` ingests one
decoded entry during loading and :meth:`_entries` re-emits the loaded
state for rewrites.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None


def append_jsonl_line(path: str, entry: dict, durable: bool = False) -> None:
    """Append ``entry`` to ``path`` as one JSONL line, atomically.

    Cooperating appenders — pool workers, service worker *processes*
    sharing one failure log, queue brokers — are serialized by an
    exclusive ``flock`` on the descriptor (released on close, including
    by a killed process), so the tail inspection below never races a
    concurrent writer's in-flight append, and lines never interleave.
    With ``durable=True`` the write is fsynced before the descriptor
    closes: the line survives a machine crash, not just a process
    crash.  (A process killed *inside* the write can still leave a torn
    final line; readers recover via the torn-line rule.)

    If the file does not currently end in a newline — a previous writer
    died mid-append — the new line is prefixed with one, so the torn
    fragment is terminated instead of concatenated onto.  Files written
    before appends were lock-serialized may also carry blank lines from
    terminator races; readers of multi-writer logs skip those.
    """
    data = (json.dumps(entry) + "\n").encode("utf-8")
    descriptor = os.open(path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        if fcntl is not None:
            fcntl.flock(descriptor, fcntl.LOCK_EX)
        size = os.fstat(descriptor).st_size
        if size and os.pread(descriptor, 1, size - 1) != b"\n":
            data = b"\n" + data
        while data:
            # A single write in practice; the loop guards the (regular
            # files: never observed) partial-write case.
            written = os.write(descriptor, data)
            data = data[written:]
        if durable:
            os.fsync(descriptor)
    finally:
        os.close(descriptor)


class CheckpointKeyError(ValueError):
    """The checkpoint on disk was written for a different identity key."""


class JsonlCheckpoint:
    """An append-only JSONL checkpoint file with a key-bound header.

    The header line is ``{"manifest": <kind>, "version": <version>,
    "key": <key>}``; subclasses set :attr:`kind` and the error-message
    vocabulary (:attr:`description`, :attr:`subject`, :attr:`hint`,
    :attr:`key_error`).
    """

    #: Discriminator stored in the header (``"evaluation-shards"``...).
    kind = "abstract"
    version = 1
    #: Human phrase for "this file is a ..." error messages.
    description = "checkpoint"
    #: What the key identifies, for mismatch messages ("evaluation").
    subject = "identity"
    #: Recovery hint appended to the key-mismatch message.
    hint = "pass a different path"
    #: Exception class raised on a key mismatch.
    key_error = CheckpointKeyError

    def __init__(self, path: str, key: dict, durable: bool = False):
        self.path = path
        self.key = key
        #: With ``durable=True`` every append (and rewrite) is fsynced
        #: before returning, so acknowledged entries survive a machine
        #: crash.  Off by default: the hot evaluation path checkpoints
        #: thousands of shards and only needs process-crash safety.
        self.durable = durable
        if os.path.exists(path):
            self._load()
        else:
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._rewrite()

    # -- subclass hooks ------------------------------------------------

    def _accept(self, entry: dict) -> None:
        """Ingest one decoded entry line into the loaded state."""
        raise NotImplementedError

    def _entries(self) -> Iterable[dict]:
        """The loaded state as entry dicts, for :meth:`_rewrite`."""
        raise NotImplementedError

    # -- persistence ---------------------------------------------------

    def _load(self) -> None:
        with open(self.path) as stream:
            content = stream.read()
        lines = content.splitlines()
        if not lines:
            self._rewrite()
            return
        #: A file not ending in a newline died mid-append; its final
        #: line must be dropped *and rewritten away*, otherwise the
        #: next append would concatenate onto the partial bytes and
        #: permanently corrupt the checkpoint.
        torn = not content.endswith("\n")
        header = self._decode(lines[0], line_number=1, final=len(lines) == 1)
        if header is None:
            # A file holding only one truncated line: start over.
            self._rewrite()
            return
        if header.get("manifest") != self.kind or header.get("version") != self.version:
            raise ValueError(
                "%s is not a version-%d %s"
                % (self.path, self.version, self.description)
            )
        if header.get("key") != self.key:
            raise self.key_error(
                "%s %s was written for a different %s (manifest key %r, "
                "current key %r); delete it or %s"
                % (
                    self.description,
                    self.path,
                    self.subject,
                    header.get("key"),
                    self.key,
                    self.hint,
                )
            )
        discarded = False
        for line_number, line in enumerate(lines[1:], start=2):
            entry = self._decode(
                line, line_number=line_number, final=line_number == len(lines)
            )
            if entry is None:
                discarded = True
                continue
            self._accept(entry)
        if discarded or torn:
            self._rewrite()

    def _rewrite(self) -> None:
        """Rewrite the file from the loaded state, dropping torn bytes
        so subsequent appends land on a clean line boundary."""
        with open(self.path, "w") as stream:
            header = {"manifest": self.kind, "version": self.version, "key": self.key}
            stream.write(json.dumps(header) + "\n")
            for entry in self._entries():
                stream.write(json.dumps(entry) + "\n")
            if self.durable:
                stream.flush()
                os.fsync(stream.fileno())

    def _decode(self, line: str, line_number: int, final: bool) -> Optional[dict]:
        """One JSONL line; a corrupt *final* line (killed mid-append)
        decodes to ``None``, corruption elsewhere raises."""
        if final and not line.strip():
            return None
        try:
            return json.loads(line)
        except ValueError:
            if final:
                return None
            raise ValueError(
                "corrupt %s %s: line %d is not valid JSON"
                % (self.description, self.path, line_number)
            )

    def _append(self, entry: dict) -> None:
        """Append one entry line (a single atomic write, fsynced when
        :attr:`durable`)."""
        # Imported at call time: the quarantine FailureLog subclasses
        # this class, so a module-level import would cycle.
        from repro.resilience.injection import maybe_inject

        append_jsonl_line(self.path, entry, durable=self.durable)
        maybe_inject("checkpoint-append", checkpoint=self)
